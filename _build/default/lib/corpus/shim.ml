(* Each shim is a MiniC header; corpus sources include them. Function
   definitions use underscore names (MiniC cannot define qualified names);
   the inliner maps a call to [ns::f] onto a definition of [ns_f]. *)

let stdio_h =
  {|#pragma once
int printf(const char *fmt);
int fprintf(int stream, const char *fmt);
|}

let stdlib_h =
  {|#pragma once
void *malloc(size_t bytes);
void free(void *p);
void exit(int code);
|}

let math_h =
  {|#pragma once
double sqrt(double x);
double fabs(double x);
double pow(double x, double y);
double exp(double x);
double fmin(double a, double b);
double fmax(double a, double b);
|}

let system = [ ("stdio.h", stdio_h); ("stdlib.h", stdlib_h); ("math.h", math_h) ]
let system_names = List.map fst system

let omp_h =
  {|#pragma once
// OpenMP runtime entry points: the model itself lives in the compiler.
int omp_get_num_threads();
int omp_get_max_threads();
int omp_get_thread_num();
double omp_get_wtime();
|}

let cuda_h =
  {|#pragma once
// CUDA runtime API surface: thin declarations, the dialect is compiled.
#define cudaMemcpyHostToDevice 1
#define cudaMemcpyDeviceToHost 2
#define cudaMemcpyDeviceToDevice 3
struct dim3 { int x; int y; int z; };
int cudaMalloc(void **ptr, size_t bytes);
int cudaMemcpy(void *dst, const void *src, size_t bytes, int kind);
int cudaMemset(void *ptr, int value, size_t bytes);
int cudaFree(void *ptr);
int cudaDeviceSynchronize();
int cudaGetLastError();
double atomicAdd(double *address, double value);
|}

let hip_h =
  {|#pragma once
// HIP runtime: same surface as CUDA but with non-trivial inline
// portability wrappers in the header (the runtime-header mass the
// divergence metric sees).
#define hipMemcpyHostToDevice 1
#define hipMemcpyDeviceToHost 2
#define hipMemcpyDeviceToDevice 3
struct dim3 { int x; int y; int z; };
int hipMalloc(void **ptr, size_t bytes);
int hipMemcpy(void *dst, const void *src, size_t bytes, int kind);
int hipMemset(void *ptr, int value, size_t bytes);
int hipFree(void *ptr);
int hipDeviceSynchronize();
int hipGetLastError();
double atomicAdd(double *address, double value);
inline int hip_check_status(int status, int line) {
  if (status != 0) {
    printf("hip error at line %d\n");
    exit(status);
  }
  return status;
}
inline int hip_round_up(int value, int granularity) {
  int rem = value % granularity;
  if (rem == 0) {
    return value;
  }
  return value + granularity - rem;
}
inline void hip_launch_bounds_guard(int block, int max_threads) {
  if (block > max_threads) {
    printf("block size exceeds launch bounds\n");
    exit(1);
  }
}
#define HIP_CHECK(x) hip_check_status(x, 0)
|}

let sycl_h =
  {|#pragma once
// SYCL: a heavily templated API surface. Much of the semantic mass of a
// SYCL port lives in these headers (queues, buffers, accessors, ranges,
// handlers and their default template arguments) even when the user
// source looks compact.
struct sycl_device { int id; int is_gpu; int max_compute_units; };
struct sycl_context { int id; int device_count; };
struct sycl_event { int id; int status; };
struct sycl_property_list { int flags; };
template<typename T>
T *sycl_malloc_shared(size_t bytes, sycl::queue &q) {
  void *p = malloc(bytes);
  return (T *)p;
}
template<typename T>
T *sycl_malloc_device(size_t bytes, sycl::queue &q) {
  void *p = malloc(bytes);
  return (T *)p;
}
inline void sycl_free(void *p, sycl::queue &q) {
  free(p);
}
template<typename T>
void sycl_buffer_init(sycl::buffer<T, 1> &buf, size_t count) {
  size_t i = 0;
  while (i < count) {
    i = i + 1;
  }
}
template<typename T>
T sycl_accessor_load(const T *base, size_t offset, int mode, int target) {
  return base[offset];
}
template<typename T>
void sycl_accessor_store(T *base, size_t offset, T value, int mode, int target) {
  base[offset] = value;
}
inline int sycl_default_selector(sycl_device d, int prefer_gpu) {
  int score = 0;
  if (d.is_gpu == prefer_gpu) {
    score = score + 100;
  }
  score = score + d.max_compute_units;
  return score;
}
inline void sycl_queue_submit_barrier(sycl_event e, int ordered) {
  if (ordered != 0) {
    e.status = 1;
  }
}
template<typename T>
T sycl_reduce_over_group(T *partials, int group_size, T init) {
  T acc = init;
  for (int i = 0; i < group_size; i++) {
    acc = acc + partials[i];
  }
  return acc;
}
template<typename T>
void sycl_group_broadcast(T *slots, int group_size, T value) {
  for (int i = 0; i < group_size; i++) {
    slots[i] = value;
  }
}
inline size_t sycl_range_linearize(size_t r0, size_t r1, size_t r2) {
  return r0 * r1 * r2;
}
inline size_t sycl_nd_item_global_id(size_t group, size_t local_size, size_t local_id) {
  return group * local_size + local_id;
}
|}

let kokkos_h =
  {|#pragma once
// Kokkos: an opinionated library abstraction; the header carries the
// dispatch and view machinery a port links against.
#define KOKKOS_LAMBDA [=]
struct kokkos_exec_space { int concurrency; int device_id; };
inline void Kokkos_initialize() {
  int ready = 1;
  if (ready == 0) {
    exit(1);
  }
}
inline void Kokkos_finalize() {
  int live_views = 0;
  if (live_views != 0) {
    printf("leaked views\n");
  }
}
template<typename F>
void Kokkos_parallel_for(const char *label, int range, F functor) {
  for (int i = 0; i < range; i++) {
    functor(i);
  }
}
template<typename F, typename T>
void Kokkos_parallel_reduce(const char *label, int range, F functor, T *result) {
  T acc = 0;
  for (int i = 0; i < range; i++) {
    functor(i, acc);
  }
  result[0] = acc;
}
template<typename T>
void Kokkos_deep_copy(T *dst, const T *src, int count) {
  for (int i = 0; i < count; i++) {
    dst[i] = src[i];
  }
}
inline void Kokkos_fence() {
  int pending = 0;
  while (pending > 0) {
    pending = pending - 1;
  }
}
|}

let tbb_h =
  {|#pragma once
// TBB: STL-inspired blocked ranges plus task-splitting dispatch.
struct tbb_range_tag { int grainsize; };
template<typename F>
void tbb_parallel_for(tbb::blocked_range<int> r, F functor) {
  functor(r);
}
template<typename F, typename J, typename T>
T tbb_parallel_reduce(tbb::blocked_range<int> r, T init, F body, J join) {
  T partial = body(r, init);
  return join(partial, init);
}
inline int tbb_split_range(int begin, int end, int grainsize) {
  int mid = begin + (end - begin) / 2;
  if (end - begin <= grainsize) {
    mid = end;
  }
  return mid;
}
|}

let stdpar_h =
  {|#pragma once
// StdPar (ISO C++ parallel algorithms): counting iterators plus the
// algorithm skeletons the offloading backend specialises.
inline int counting_iterator(int value) {
  return value;
}
template<typename F>
void std_for_each(int policy, int first, int last, F functor) {
  for (int i = first; i < last; i++) {
    functor(i);
  }
}
template<typename R, typename T, typename Tr>
T std_transform_reduce(int policy, int first, int last, T init, R reduce, Tr transform) {
  T acc = init;
  for (int i = first; i < last; i++) {
    acc = reduce(acc, transform(i));
  }
  return acc;
}
|}

let raja_h =
  {|#pragma once
// RAJA: execution-policy templates over loop abstractions; like Kokkos,
// an opinionated library layer whose dispatch lives in headers.
struct raja_exec_policy { int async; int chunk; };
template<typename F>
void RAJA_forall(RAJA::RangeSegment seg, F functor) {
  for (int i = seg.begin(); i < seg.end(); i++) {
    functor(i);
  }
}
inline int raja_policy_select(int device, int openmp) {
  int policy = 0;
  if (device != 0) {
    policy = 2;
  } else {
    if (openmp != 0) {
      policy = 1;
    }
  }
  return policy;
}
template<typename T>
T raja_reduce_combine(T a, T b) {
  return a + b;
}
|}

let for_model id =
  match id with
  | "serial" -> []
  | "omp" | "omp-target" -> [ ("omp.h", omp_h) ]
  | "cuda" -> [ ("cuda.h", cuda_h) ]
  | "hip" -> [ ("hip.h", hip_h) ]
  | "sycl-usm" | "sycl-acc" -> [ ("sycl.h", sycl_h) ]
  | "kokkos" -> [ ("kokkos.h", kokkos_h) ]
  | "tbb" -> [ ("tbb.h", tbb_h) ]
  | "stdpar" -> [ ("stdpar.h", stdpar_h) ]
  | "raja" -> [ ("raja.h", raja_h) ]
  | _ -> []
