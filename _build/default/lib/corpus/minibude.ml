let nposes = 64
let natlig = 8
let natpro = 32

let codebase ~model =
  match Emit.gen_for model with
  | None -> None
  | Some g ->
      let arr = Emit.arr g in
      let a = arr in
      (* deterministic pseudo-positions/charges, same in every port *)
      let k_init_protein =
        Emit.map_kernel g ~name:"init_protein" ~n:"natpro"
          ~arrays:[ "px"; "py"; "pz"; "pq" ] ~scalars:[]
          ~body:
            [
              Printf.sprintf "%s = (double)((i * 37) %% 100) / 25.0 - 2.0;" (a "px" "i");
              Printf.sprintf "%s = (double)((i * 53) %% 100) / 25.0 - 2.0;" (a "py" "i");
              Printf.sprintf "%s = (double)((i * 71) %% 100) / 25.0 - 2.0;" (a "pz" "i");
              Printf.sprintf "%s = (double)((i %% 3) - 1);" (a "pq" "i");
            ]
      in
      let k_init_ligand =
        Emit.map_kernel g ~name:"init_ligand" ~n:"natlig"
          ~arrays:[ "lx"; "ly"; "lz"; "lq" ] ~scalars:[]
          ~body:
            [
              Printf.sprintf "%s = (double)((i * 13) %% 40) / 20.0 - 1.0;" (a "lx" "i");
              Printf.sprintf "%s = (double)((i * 17) %% 40) / 20.0 - 1.0;" (a "ly" "i");
              Printf.sprintf "%s = (double)((i * 19) %% 40) / 20.0 - 1.0;" (a "lz" "i");
              Printf.sprintf "%s = (double)((i %% 2) * 2 - 1);" (a "lq" "i");
            ]
      in
      (* the docking energy of one pose, shared between the parallel kernel
         and the serial reference loop *)
      let docking_body ~out ~pose =
        [
          Printf.sprintf "const double ang = 0.05 * (double)%s;" pose;
          "const double cs = cos(ang);";
          "const double sn = sin(ang);";
          "double etot = 0.0;";
          "for (int l = 0; l < natlig; l++) {";
          Printf.sprintf "  const double lxt = cs * %s - sn * %s;" (a "lx" "l") (a "ly" "l");
          Printf.sprintf "  const double lyt = sn * %s + cs * %s;" (a "lx" "l") (a "ly" "l");
          Printf.sprintf "  const double lzt = %s + 0.01 * (double)%s;" (a "lz" "l") pose;
          "  for (int p = 0; p < natpro; p++) {";
          Printf.sprintf "    const double dx = lxt - %s;" (a "px" "p");
          Printf.sprintf "    const double dy = lyt - %s;" (a "py" "p");
          Printf.sprintf "    const double dz = lzt - %s;" (a "pz" "p");
          "    const double r2 = dx * dx + dy * dy + dz * dz + 0.05;";
          "    const double r6 = r2 * r2 * r2;";
          Printf.sprintf
            "    etot += 1.0 / r6 - 0.5 / r2 + 0.1 * %s * %s / sqrt(r2);"
            (a "lq" "l") (a "pq" "p");
          "  }";
          "}";
          Printf.sprintf "%s = 0.5 * etot;" out;
        ]
      in
      let k_fasten =
        Emit.map_kernel g ~name:"fasten_main" ~n:"nposes"
          ~arrays:[ "px"; "py"; "pz"; "pq"; "lx"; "ly"; "lz"; "lq"; "energies" ]
          ~scalars:[ ("int", "natlig"); ("int", "natpro") ]
          ~body:(docking_body ~out:(a "energies" "i") ~pose:"i")
      in
      let kernels = [ k_init_protein; k_init_ligand; k_fasten ] in
      let tops = List.concat_map fst kernels in
      let rb name = Emit.read_back g ~host:("h_" ^ name) ~dev:name ~n:"nposes" in
      let staged = rb "energies" <> [] in
      let vread i =
        if staged then Printf.sprintf "h_energies[%s]" i else arr "energies" i
      in
      let protein = [ "px"; "py"; "pz"; "pq" ] and ligand = [ "lx"; "ly"; "lz"; "lq" ] in
      let rb_field name =
        Emit.read_back g ~host:("h_" ^ name) ~dev:name
          ~n:(if List.mem name protein then "natpro" else "natlig")
      in
      (* the serial reference needs host copies of positions too *)
      let host_a name idx =
        if staged then Printf.sprintf "h_%s[%s]" name idx else arr name idx
      in
      let reference_body =
        [
          "double max_diff = 0.0;";
          "for (int pose = 0; pose < nposes; pose++) {";
        ]
        @ Emit.indent_block
            ((let a = host_a in
              [
                "const double ang = 0.05 * (double)pose;";
                "const double cs = cos(ang);";
                "const double sn = sin(ang);";
                "double etot = 0.0;";
                "for (int l = 0; l < natlig; l++) {";
                Printf.sprintf "  const double lxt = cs * %s - sn * %s;" (a "lx" "l")
                  (a "ly" "l");
                Printf.sprintf "  const double lyt = sn * %s + cs * %s;" (a "lx" "l")
                  (a "ly" "l");
                Printf.sprintf "  const double lzt = %s + 0.01 * (double)pose;" (a "lz" "l");
                "  for (int p = 0; p < natpro; p++) {";
                Printf.sprintf "    const double dx = lxt - %s;" (a "px" "p");
                Printf.sprintf "    const double dy = lyt - %s;" (a "py" "p");
                Printf.sprintf "    const double dz = lzt - %s;" (a "pz" "p");
                "    const double r2 = dx * dx + dy * dy + dz * dz + 0.05;";
                "    const double r6 = r2 * r2 * r2;";
                Printf.sprintf
                  "    etot += 1.0 / r6 - 0.5 / r2 + 0.1 * %s * %s / sqrt(r2);"
                  (a "lq" "l") (a "pq" "p");
                "  }";
                "}";
                "const double reference = 0.5 * etot;";
                Printf.sprintf "const double diff = fabs(%s - reference);" (vread "pose");
                "if (diff > max_diff) {";
                "  max_diff = diff;";
                "}";
              ]))
        @ [ "}" ]
      in
      let main_body =
        [
          Printf.sprintf "const int nposes = %d;" nposes;
          Printf.sprintf "const int natlig = %d;" natlig;
          Printf.sprintf "const int natpro = %d;" natpro;
        ]
        @ List.concat_map (fun f -> Emit.alloc g ~name:f ~n:"natpro") protein
        @ List.concat_map (fun f -> Emit.alloc g ~name:f ~n:"natlig") ligand
        @ Emit.alloc g ~name:"energies" ~n:"nposes"
        @ snd k_init_protein
        @ snd k_init_ligand
        @ snd k_fasten
        @ (if staged then
             List.concat_map rb_field (protein @ ligand) @ rb "energies"
           else [])
        @ reference_body
        @ [
            "printf(\"largest difference was %f\\n\", max_diff);";
            "if (max_diff < 1.0e-9) {";
            "  printf(\"Validation PASSED\\n\");";
            "} else {";
            "  printf(\"Validation FAILED\\n\");";
            "  return 1;";
            "}";
          ]
        @ List.concat_map (fun f -> Emit.dealloc g ~name:f ~n:"natpro") protein
        @ List.concat_map (fun f -> Emit.dealloc g ~name:f ~n:"natlig") ligand
        @ Emit.dealloc g ~name:"energies" ~n:"nposes"
      in
      let source =
        Emit.render
          ~header_comment:
            (Printf.sprintf
               "miniBUDE (%s port): molecular docking energy evaluation over poses"
               (Emit.model_name g))
          ~tops ~main_body g
      in
      Some
        (Emit.wrap ~app:"minibude" g ~source
           ~main_file:(Printf.sprintf "bude_%s.cpp" model) ())

let all () = List.filter_map (fun m -> codebase ~model:m) Emit.all_ids
