(** TeaLeaf (C++): implicit heat-equation solve with Conjugate Gradient.

    Mirrors UoB-HPC/TeaLeaf's CG solver: a 5-point implicit diffusion
    stencil on a 2D structured grid, solved with textbook CG (w = Ap,
    pw/rro/rrn reductions, axpy updates). The paper selects TeaLeaf for
    clustering because its shared-vs-model-specific code ratio is balanced
    (§V-A); the emitted ports preserve that property — kernels carry the
    algorithm, the gen layer carries each model's scaffolding.

    Verification: the CG residual must drop by at least two orders of
    magnitude over the deck's iterations and stay non-negative (the BM5
    verification spirit). *)

val codebase : model:string -> Emit.codebase option
(** Emit the port for a model id. *)

val all : unit -> Emit.codebase list
(** All ten ports. *)

val grid : int * int
(** The emitted deck's grid (nx, ny). *)

val iterations : int
(** CG iterations in the emitted deck. *)
