let problem_size = 1024

let models =
  [
    ("sequential", "Sequential");
    ("array", "Array");
    ("doconcurrent", "DoConcurrent");
    ("omp", "OpenMP");
    ("omp-taskloop", "OpenMP Taskloop");
    ("omp-target", "OpenMP Target");
    ("acc", "OpenACC");
    ("acc-array", "OpenACC Array");
  ]

let model_ids = List.map fst models
let model_name id = List.assoc id models

(* One STREAM kernel as element statements (i is the loop index) and as
   whole-array statements; each model picks its form. *)
type kernel = { loop_body : string list; array_form : string list }

let k_init =
  {
    loop_body = [ "a(i) = 0.1d0"; "b(i) = 0.2d0"; "c(i) = 0.0d0" ];
    array_form = [ "a(:) = 0.1d0"; "b(:) = 0.2d0"; "c(:) = 0.0d0" ];
  }

let k_copy = { loop_body = [ "c(i) = a(i)" ]; array_form = [ "c(:) = a(:)" ] }
let k_mul = { loop_body = [ "b(i) = scalar * c(i)" ]; array_form = [ "b(:) = scalar * c(:)" ] }
let k_add = { loop_body = [ "c(i) = a(i) + b(i)" ]; array_form = [ "c(:) = a(:) + b(:)" ] }

let k_triad =
  {
    loop_body = [ "a(i) = b(i) + scalar * c(i)" ];
    array_form = [ "a(:) = b(:) + scalar * c(:)" ];
  }

let indent n lines = List.map (fun l -> String.make n ' ' ^ l) lines

let do_loop body = ("do i = 1, n" :: indent 2 body) @ [ "end do" ]
let do_concurrent body = ("do concurrent (i = 1:n)" :: indent 2 body) @ [ "end do" ]

(* Per-model renderings of a map kernel and of the dot reduction. *)
let map_stmts model k =
  match model with
  | "sequential" -> do_loop k.loop_body
  | "array" -> k.array_form
  | "doconcurrent" -> do_concurrent k.loop_body
  | "omp" -> ("!$omp parallel do" :: do_loop k.loop_body) @ [ "!$omp end parallel do" ]
  | "omp-taskloop" ->
      [ "!$omp parallel"; "!$omp single"; "!$omp taskloop" ]
      @ do_loop k.loop_body
      @ [ "!$omp end taskloop"; "!$omp end single"; "!$omp end parallel" ]
  | "omp-target" ->
      ("!$omp target teams distribute parallel do" :: do_loop k.loop_body)
      @ [ "!$omp end target teams distribute parallel do" ]
  | "acc" -> ("!$acc parallel loop" :: do_loop k.loop_body) @ [ "!$acc end parallel loop" ]
  | "acc-array" -> ("!$acc kernels" :: k.array_form) @ [ "!$acc end kernels" ]
  | _ -> invalid_arg "map_stmts: unknown model"

let dot_loop = do_loop [ "summ = summ + a(i) * b(i)" ]

let dot_stmts model =
  match model with
  | "sequential" -> "summ = 0.0d0" :: dot_loop
  | "array" -> [ "summ = dot_product(a, b)" ]
  | "doconcurrent" -> "summ = 0.0d0" :: do_concurrent [ "summ = summ + a(i) * b(i)" ]
  | "omp" ->
      [ "summ = 0.0d0"; "!$omp parallel do reduction(+:summ)" ]
      @ dot_loop
      @ [ "!$omp end parallel do" ]
  | "omp-taskloop" ->
      [ "summ = 0.0d0"; "!$omp parallel"; "!$omp single";
        "!$omp taskloop reduction(+:summ)" ]
      @ dot_loop
      @ [ "!$omp end taskloop"; "!$omp end single"; "!$omp end parallel" ]
  | "omp-target" ->
      [ "summ = 0.0d0";
        "!$omp target teams distribute parallel do map(tofrom: summ) reduction(+:summ)" ]
      @ dot_loop
      @ [ "!$omp end target teams distribute parallel do" ]
  | "acc" ->
      [ "summ = 0.0d0"; "!$acc parallel loop reduction(+:summ)" ]
      @ dot_loop
      @ [ "!$acc end parallel loop" ]
  | "acc-array" ->
      [ "!$acc kernels"; "summ = dot_product(a, b)"; "!$acc end kernels" ]
  | _ -> invalid_arg "dot_stmts: unknown model"

let data_begin model =
  match model with
  | "omp-target" -> [ "!$omp target enter data map(alloc: a, b, c)" ]
  | "acc" | "acc-array" -> [ "!$acc enter data create(a, b, c)" ]
  | _ -> []

let data_end model =
  match model with
  | "omp-target" ->
      [ "!$omp target update from(a)"; "!$omp target update from(b)";
        "!$omp target update from(c)"; "!$omp target exit data map(release: a, b, c)" ]
  | "acc" | "acc-array" ->
      [ "!$acc update self(a)"; "!$acc update self(b)"; "!$acc update self(c)";
        "!$acc exit data delete(a, b, c)" ]
  | _ -> []

let source ~model =
  let name = model_name model in
  let b = Buffer.create 4096 in
  let line l =
    Buffer.add_string b l;
    Buffer.add_char b '\n'
  in
  line (Printf.sprintf "! BabelStream Fortran (%s): STREAM kernels copy/mul/add/triad/dot" name);
  line "program babelstream";
  line "  implicit none";
  line (Printf.sprintf "  integer, parameter :: n = %d" problem_size);
  line "  integer, parameter :: num_times = 4";
  line "  integer :: i, t";
  line "  real(kind=8) :: scalar, summ, gold_a, gold_b, gold_c";
  line "  real(kind=8) :: err_a, err_b, err_c, dot_err, epsi";
  line "  real(kind=8), allocatable, dimension(:) :: a, b, c";
  line "  allocate(a(n), b(n), c(n))";
  line "  scalar = 0.4d0";
  List.iter line (indent 2 (data_begin model));
  List.iter line (indent 2 (map_stmts model k_init));
  line "  do t = 1, num_times";
  List.iter line
    (indent 4
       (map_stmts model k_copy @ map_stmts model k_mul @ map_stmts model k_add
       @ map_stmts model k_triad));
  line "  end do";
  List.iter line (indent 2 (dot_stmts model));
  List.iter line (indent 2 (data_end model));
  line "  ! gold values follow the same kernel sequence analytically";
  line "  gold_a = 0.1d0";
  line "  gold_b = 0.2d0";
  line "  gold_c = 0.0d0";
  line "  do t = 1, num_times";
  line "    gold_c = gold_a";
  line "    gold_b = scalar * gold_c";
  line "    gold_c = gold_a + gold_b";
  line "    gold_a = gold_b + scalar * gold_c";
  line "  end do";
  line "  err_a = sum(abs(a - gold_a)) / real(n, 8)";
  line "  err_b = sum(abs(b - gold_b)) / real(n, 8)";
  line "  err_c = sum(abs(c - gold_c)) / real(n, 8)";
  line "  dot_err = abs((summ - gold_a * gold_b * real(n, 8)) / (gold_a * gold_b * real(n, 8)))";
  line "  epsi = 1.0d-8";
  line "  if (err_a < epsi .and. err_b < epsi .and. err_c < epsi .and. dot_err < epsi) then";
  line "    print *, 'Validation PASSED'";
  line "  else";
  line "    print *, 'Validation FAILED'";
  line "  end if";
  line "  deallocate(a, b, c)";
  line "end program babelstream";
  Buffer.contents b

let codebase ~model =
  if not (List.mem_assoc model models) then None
  else
    let file = Printf.sprintf "stream_%s.f90" model in
    Some
      {
        Emit.app = "babelstream-f";
        model;
        model_name = model_name model;
        lang = `F;
        main_file = file;
        extra_units = [];
        files = [ (file, source ~model) ];
        system_headers = [];
        defines = [];
      }

let all () = List.filter_map (fun m -> codebase ~model:m) model_ids
