let grid = (32, 32)
let iterations = 8

let codebase ~model =
  match Emit.gen_for model with
  | None -> None
  | Some g ->
      let arr = Emit.arr g in
      let nx, ny = grid in
      let nn = "nn" in
      let a = arr in
      (* The implicit diffusion operator: identity on the halo so the
         matrix stays SPD over the whole flattened domain. *)
      let apply_op ~dst ~src =
        [
          "const int x = i % nx;";
          "const int y = i / nx;";
          "if (x > 0 && x < nx - 1 && y > 0 && y < ny - 1) {";
          Printf.sprintf
            "  %s = (1.0 + 2.0 * rx + 2.0 * ry) * %s - rx * (%s + %s) - ry * (%s + %s);"
            (a dst "i") (a src "i") (a src "i + 1") (a src "i - 1") (a src "i + nx")
            (a src "i - nx");
          "} else {";
          Printf.sprintf "  %s = %s;" (a dst "i") (a src "i");
          "}";
        ]
      in
      let stencil_scalars =
        [ ("int", "nx"); ("int", "ny"); ("double", "rx"); ("double", "ry") ]
      in
      let k_init =
        (* hot square in the corner of the domain, like a TeaLeaf state *)
        Emit.map_kernel g ~name:"set_initial_state" ~n:nn ~arrays:[ "u0"; "u" ]
          ~scalars:[ ("int", "nx"); ("int", "ny") ]
          ~body:
            [
              "const int x = i % nx;";
              "const int y = i / nx;";
              "double value = 0.1;";
              "if (x > nx / 4 && x < nx / 2 && y > ny / 4 && y < ny / 2) {";
              "  value = 10.0;";
              "}";
              Printf.sprintf "%s = value;" (a "u0" "i");
              Printf.sprintf "%s = value;" (a "u" "i");
            ]
      in
      let k_residual =
        (* r = u0 - A u *)
        Emit.map_kernel g ~name:"cg_init_residual" ~n:nn ~arrays:[ "r"; "u"; "u0" ]
          ~scalars:stencil_scalars
          ~body:
            (apply_op ~dst:"r" ~src:"u"
            @ [ Printf.sprintf "%s = %s - %s;" (a "r" "i") (a "u0" "i") (a "r" "i") ])
      in
      let k_copy_p =
        Emit.map_kernel g ~name:"cg_init_p" ~n:nn ~arrays:[ "p"; "r" ] ~scalars:[]
          ~body:[ Printf.sprintf "%s = %s;" (a "p" "i") (a "r" "i") ]
      in
      let k_w =
        Emit.map_kernel g ~name:"cg_calc_w" ~n:nn ~arrays:[ "w"; "p" ]
          ~scalars:stencil_scalars ~body:(apply_op ~dst:"w" ~src:"p")
      in
      let k_rro =
        Emit.reduce_kernel g ~name:"cg_rro" ~n:nn ~arrays:[ "r" ] ~scalars:[]
          ~result:"rro"
          ~expr:(Printf.sprintf "%s * %s" (a "r" "i") (a "r" "i"))
      in
      let k_pw =
        Emit.reduce_kernel g ~name:"cg_pw" ~n:nn ~arrays:[ "p"; "w" ] ~scalars:[]
          ~result:"pw"
          ~expr:(Printf.sprintf "%s * %s" (a "p" "i") (a "w" "i"))
      in
      let k_ur =
        Emit.map_kernel g ~name:"cg_calc_ur" ~n:nn ~arrays:[ "u"; "r"; "p"; "w" ]
          ~scalars:[ ("double", "alpha") ]
          ~body:
            [
              Printf.sprintf "%s = %s + alpha * %s;" (a "u" "i") (a "u" "i") (a "p" "i");
              Printf.sprintf "%s = %s - alpha * %s;" (a "r" "i") (a "r" "i") (a "w" "i");
            ]
      in
      let k_rrn =
        Emit.reduce_kernel g ~name:"cg_rrn" ~n:nn ~arrays:[ "r" ] ~scalars:[]
          ~result:"rrn"
          ~expr:(Printf.sprintf "%s * %s" (a "r" "i") (a "r" "i"))
      in
      let k_p =
        Emit.map_kernel g ~name:"cg_calc_p" ~n:nn ~arrays:[ "p"; "r" ]
          ~scalars:[ ("double", "beta") ]
          ~body:
            [ Printf.sprintf "%s = %s + beta * %s;" (a "p" "i") (a "r" "i") (a "p" "i") ]
      in
      let kernels =
        [ k_init; k_residual; k_copy_p; k_w; k_rro; k_pw; k_ur; k_rrn; k_p ]
      in
      let tops = List.concat_map fst kernels in
      let fields = [ "u"; "u0"; "r"; "p"; "w" ] in
      let main_body =
        [
          Printf.sprintf "const int nx = %d;" nx;
          Printf.sprintf "const int ny = %d;" ny;
          "const int nn = nx * ny;";
          Printf.sprintf "const int max_iters = %d;" iterations;
          "const double rx = 0.1;";
          "const double ry = 0.1;";
          "double rro = 0.0;";
          "double pw = 0.0;";
          "double rrn = 0.0;";
        ]
        @ List.concat_map (fun f -> Emit.alloc g ~name:f ~n:nn) fields
        @ snd k_init
        @ snd k_residual
        @ snd k_copy_p
        @ snd k_rro
        @ [ "const double initial_rr = rro;" ]
        @ [ "for (int iter = 0; iter < max_iters; iter++) {" ]
        @ Emit.indent_block
            (snd k_w @ snd k_pw
            @ [ "const double alpha = rro / pw;" ]
            @ snd k_ur @ snd k_rrn
            @ [ "const double beta = rrn / rro;" ]
            @ snd k_p
            @ [ "rro = rrn;" ])
        @ [ "}" ]
        @ [
            "printf(\"initial residual %f\\n\", initial_rr);";
            "printf(\"final residual %f\\n\", rrn);";
            "if (rrn >= 0.0 && rrn < initial_rr / 100.0) {";
            "  printf(\"Verification PASSED\\n\");";
            "} else {";
            "  printf(\"Verification FAILED\\n\");";
            "  return 1;";
            "}";
          ]
        @ List.concat_map (fun f -> Emit.dealloc g ~name:f ~n:nn) fields
      in
      let source =
        Emit.render
          ~header_comment:
            (Printf.sprintf
               "TeaLeaf (%s port): implicit heat diffusion solved with Conjugate Gradient"
               (Emit.model_name g))
          ~tops ~main_body g
      in
      Some
        (Emit.wrap ~app:"tealeaf" g ~source
           ~main_file:(Printf.sprintf "tea_%s.cpp" model) ())

let all () = List.filter_map (fun m -> codebase ~model:m) Emit.all_ids
