(** CloverLeaf (C++): explicit compressible-hydrodynamics step.

    Mirrors UoB-HPC/CloverLeaf's structure: a staggered 2D grid, an
    ideal-gas equation of state, artificial viscosity, pressure-gradient
    acceleration, PdV energy work, conservative (flux-form) cell
    advection, and the [field_summary] reductions (mass, internal energy,
    kinetic energy, pressure). The largest mini-app in the corpus; the
    paper's BM64-style deck runs 300 iterations — the emitted deck scales
    that down while keeping every kernel.

    Verification: flux-form advection conserves total mass to roundoff;
    field summaries must stay positive and finite (the built-in
    verification of the real mini-app checks field summaries the same
    way). *)

val codebase : model:string -> Emit.codebase option
val all : unit -> Emit.codebase list

val grid : int * int
(** Emitted deck grid. *)

val steps : int
(** Hydro steps in the emitted deck. *)
