(** Model-specific code generation for the C++ mini-app corpus.

    Real mini-app ports share their numerical algorithm and differ in the
    parallel scaffolding each model imposes. This module captures that
    scaffolding once per model as a {!gen} record — allocation idiom,
    element access syntax, kernel definition + dispatch shape, reduction
    shape, setup/teardown — and each mini-app composes its kernels
    through it. The emitted sources are what the pipeline analyses; they
    parse, lower, and run under the interpreter for verification.

    The ten models are the paper's Table II set: Serial, OpenMP,
    OpenMP target, CUDA, HIP, SYCL (USM), SYCL (Accessors), Kokkos, TBB,
    StdPar. *)

type codebase = {
  app : string;          (** application id, e.g. ["tealeaf"] *)
  model : string;        (** model id, e.g. ["sycl-usm"] *)
  model_name : string;   (** display name *)
  lang : [ `C | `F ];
  main_file : string;    (** entry translation unit *)
  extra_units : string list;
      (** further translation units (linked in; indexed as their own
          comparison units per Eq. (1)) *)
  files : (string * string) list;
      (** every file of the codebase: main first, then model shims and
          system headers *)
  system_headers : string list;  (** subset of [files] masked from trees *)
  defines : (string * string) list;  (** -D macros for the compile command *)
}

type gen
(** A model's code-generation vocabulary. *)

val gen_for : string -> gen option
(** [gen_for id] looks up a model generator by id. *)

val all_ids : string list
(** The ten C++ model ids of the paper's evaluation (Table II),
    ["serial"] first. *)

val extended_ids : string list
(** {!all_ids} plus the extension models this repository adds beyond the
    paper's evaluation set (currently ["raja"]). *)

val model_name : gen -> string
(** Display name of the generator's model. *)

(** The pieces mini-apps compose. All statement lists are lines of MiniC
    code at main-body indentation; kernels also return top-level
    definitions to splice before [main]. *)

val includes : gen -> string list
val prologue : gen -> string list
val epilogue : gen -> string list

val alloc : gen -> name:string -> n:string -> string list
(** Declare-and-allocate a [double] array of extent [n]. *)

val dealloc : gen -> name:string -> n:string -> string list

val arr : gen -> string -> string -> string
(** [arr g a i] — the element-access expression ([a\[i\]] or the view
    form [a(i)]). *)

val map_kernel :
  gen ->
  name:string ->
  n:string ->
  arrays:string list ->
  scalars:(string * string) list ->
  body:string list ->
  string list * string list
(** [map_kernel g ~name ~n ~arrays ~scalars ~body] renders a data-parallel
    loop whose body (statements over index [i], written with {!arr})
    reads/writes [arrays] and reads the [(type, name)] scalars. Returns
    [(top_level_definitions, call_statements)]. *)

val reduce_kernel :
  gen ->
  name:string ->
  n:string ->
  arrays:string list ->
  scalars:(string * string) list ->
  result:string ->
  expr:string ->
  string list * string list
(** Sum-reduction of [expr] (an expression in [i]) into the predeclared
    [double] variable [result]. *)

val read_back : gen -> host:string -> dev:string -> n:string -> string list
(** Statements staging a device array into a freshly declared host array
    [host] for verification; empty for shared-memory models (verify reads
    the array directly — callers alias [host] to [dev] when this returns
    []). *)

val arr_param : gen -> string -> string
(** [arr_param g name] renders the parameter declaration by which this
    model passes an array between translation units ([double *a],
    [sycl::buffer<double, 1> &a], [Kokkos::View<double*> a]). *)

val ctx_params : gen -> (string * string) list
(** Extra [(type, name)] context parameters a support function needs —
    the SYCL models thread their queue through. *)

val render_support :
  header_comment:string -> tops:string list -> functions:string list -> gen -> string
(** Assemble a support translation unit (no [main]): includes, top-level
    definitions, then the given function definitions. *)

val indent_block : string list -> string list
(** Indent statements one level (two spaces), for nesting inside an
    emitted block. *)

val render : header_comment:string -> tops:string list -> main_body:string list -> gen -> string
(** Assemble a complete translation unit: includes, top-level definitions,
    and [int main()] wrapping [main_body]. *)

val wrap :
  ?extra:(string * string) list ->
  app:string -> gen -> source:string -> main_file:string -> unit -> codebase
(** Package a rendered source (plus optional extra translation units,
    [(filename, content)]) with its model shims and the system headers
    into a {!codebase}. *)
