(** Runtime shim headers for the MiniC programming models.

    Real ports pull model headers into every translation unit; the unit
    construction of Eq. (1) then attributes their semantic mass to the
    port. These shims play that role: each is a small MiniC header
    modelled on the corresponding runtime's API surface — SYCL's heavily
    templated and comparatively large (the effect §V-C measures), HIP's
    carrying non-trivial inline wrappers, CUDA/OpenMP's nearly empty
    (their semantics live in the compiler), Kokkos/TBB/StdPar in
    between.

    [system] headers (stdio/stdlib/math) model libc: they resolve during
    preprocessing but are masked out of the trees, the way SilverVale
    masks system headers (§III-C). *)

val system : (string * string) list
(** [(name, content)] for ["stdio.h"], ["stdlib.h"], ["math.h"]. *)

val system_names : string list
(** Names of the system headers, for masking. *)

val for_model : string -> (string * string) list
(** [for_model id] is the shim header set a model's sources include
    (empty for ["serial"]; ["omp"] gets ["omp.h"], ["sycl-usm"] gets
    ["sycl.h"], ...). Unknown ids get no shims. *)
