lib/corpus/minibude.mli: Emit
