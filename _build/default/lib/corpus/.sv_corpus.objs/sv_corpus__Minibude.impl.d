lib/corpus/minibude.ml: Emit List Printf
