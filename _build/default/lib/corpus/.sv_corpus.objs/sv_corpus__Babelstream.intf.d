lib/corpus/babelstream.mli: Emit
