lib/corpus/tealeaf.mli: Emit
