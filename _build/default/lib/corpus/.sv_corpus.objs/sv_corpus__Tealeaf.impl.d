lib/corpus/tealeaf.ml: Emit List Printf
