lib/corpus/babelstream_f.ml: Buffer Emit List Printf String
