lib/corpus/cloverleaf.ml: Emit List Printf String
