lib/corpus/babelstream.ml: Emit List Printf
