lib/corpus/cloverleaf.mli: Emit
