lib/corpus/shim.mli:
