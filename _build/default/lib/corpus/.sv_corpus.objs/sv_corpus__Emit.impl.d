lib/corpus/emit.ml: Buffer List Printf Shim String
