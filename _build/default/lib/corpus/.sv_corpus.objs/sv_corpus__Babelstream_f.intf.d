lib/corpus/babelstream_f.mli: Emit
