lib/corpus/shim.ml: List
