lib/corpus/emit.mli:
