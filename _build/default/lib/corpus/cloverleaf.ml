let grid = (32, 32)
let steps = 4

let codebase ~model =
  match Emit.gen_for model with
  | None -> None
  | Some g ->
      let arr = Emit.arr g in
      let nx, ny = grid in
      let nn = "nn" in
      let a = arr in
      let xy_prelude = [ "const int x = i % nx;"; "const int y = i / nx;" ] in
      let interior_guard = "x > 0 && x < nx - 1 && y > 0 && y < ny - 1" in
      let k_initialise =
        Emit.map_kernel g ~name:"initialise_chunk" ~n:nn
          ~arrays:[ "density"; "energy"; "xvel"; "yvel" ]
          ~scalars:[ ("int", "nx"); ("int", "ny") ]
          ~body:
            (xy_prelude
            @ [
                "if (x < nx / 2) {";
                Printf.sprintf "  %s = 1.0;" (a "density" "i");
                Printf.sprintf "  %s = 2.5;" (a "energy" "i");
                "} else {";
                Printf.sprintf "  %s = 0.125;" (a "density" "i");
                Printf.sprintf "  %s = 2.0;" (a "energy" "i");
                "}";
                Printf.sprintf "%s = 0.1;" (a "xvel" "i");
                "if (x >= nx / 2) {";
                Printf.sprintf "  %s = -0.1;" (a "xvel" "i");
                "}";
                Printf.sprintf "%s = 0.05;" (a "yvel" "i");
              ])
      in
      let k_ideal_gas =
        Emit.map_kernel g ~name:"ideal_gas" ~n:nn
          ~arrays:[ "density"; "energy"; "pressure"; "soundspeed" ] ~scalars:[]
          ~body:
            [
              Printf.sprintf "%s = 0.4 * %s * %s;" (a "pressure" "i") (a "density" "i")
                (a "energy" "i");
              Printf.sprintf "%s = sqrt(1.4 * %s / %s);" (a "soundspeed" "i")
                (a "pressure" "i") (a "density" "i");
            ]
      in
      let k_viscosity =
        Emit.map_kernel g ~name:"viscosity" ~n:nn
          ~arrays:[ "xvel"; "yvel"; "density"; "work" ]
          ~scalars:[ ("int", "nx"); ("int", "ny") ]
          ~body:
            (xy_prelude
            @ [
                Printf.sprintf "%s = 0.0;" (a "work" "i");
                Printf.sprintf "if (%s) {" interior_guard;
                Printf.sprintf "  const double du = %s - %s;" (a "xvel" "i + 1")
                  (a "xvel" "i - 1");
                Printf.sprintf "  const double dv = %s - %s;" (a "yvel" "i + nx")
                  (a "yvel" "i - nx");
                "  const double div = du + dv;";
                "  if (div < 0.0) {";
                Printf.sprintf "    %s = 2.0 * %s * div * div;" (a "work" "i")
                  (a "density" "i");
                "  }";
                "}";
              ])
      in
      let k_accelerate =
        Emit.map_kernel g ~name:"accelerate" ~n:nn
          ~arrays:[ "xvel"; "yvel"; "pressure"; "work"; "density" ]
          ~scalars:[ ("int", "nx"); ("int", "ny"); ("double", "dt") ]
          ~body:
            (xy_prelude
            @ [
                Printf.sprintf "if (%s) {" interior_guard;
                Printf.sprintf
                  "  const double pgx = (%s + %s) - (%s + %s);"
                  (a "pressure" "i + 1") (a "work" "i + 1") (a "pressure" "i - 1")
                  (a "work" "i - 1");
                Printf.sprintf
                  "  const double pgy = (%s + %s) - (%s + %s);"
                  (a "pressure" "i + nx") (a "work" "i + nx") (a "pressure" "i - nx")
                  (a "work" "i - nx");
                Printf.sprintf "  %s = %s - dt * pgx / (2.0 * %s);" (a "xvel" "i")
                  (a "xvel" "i") (a "density" "i");
                Printf.sprintf "  %s = %s - dt * pgy / (2.0 * %s);" (a "yvel" "i")
                  (a "yvel" "i") (a "density" "i");
                "}";
              ])
      in
      let k_pdv =
        Emit.map_kernel g ~name:"pdv" ~n:nn
          ~arrays:[ "xvel"; "yvel"; "pressure"; "density"; "energy" ]
          ~scalars:[ ("int", "nx"); ("int", "ny"); ("double", "dt") ]
          ~body:
            (xy_prelude
            @ [
                Printf.sprintf "if (%s) {" interior_guard;
                Printf.sprintf "  const double du = %s - %s;" (a "xvel" "i + 1")
                  (a "xvel" "i - 1");
                Printf.sprintf "  const double dv = %s - %s;" (a "yvel" "i + nx")
                  (a "yvel" "i - nx");
                "  const double div = 0.5 * (du + dv);";
                Printf.sprintf "  %s = %s - dt * %s * div / %s;" (a "energy" "i")
                  (a "energy" "i") (a "pressure" "i") (a "density" "i");
                Printf.sprintf "  if (%s < 0.01) {" (a "energy" "i");
                Printf.sprintf "    %s = 0.01;" (a "energy" "i");
                "  }";
                "}";
              ])
      in
      let k_flux =
        (* face flux between cell i and i+1 along x; zero on boundary *)
        Emit.map_kernel g ~name:"calc_flux" ~n:nn
          ~arrays:[ "xvel"; "density"; "flux" ]
          ~scalars:[ ("int", "nx"); ("int", "ny") ]
          ~body:
            (xy_prelude
            @ [
                Printf.sprintf "%s = 0.0;" (a "flux" "i");
                "if (x < nx - 1 && y > 0 && y < ny - 1) {";
                Printf.sprintf "  const double vface = 0.5 * (%s + %s);" (a "xvel" "i")
                  (a "xvel" "i + 1");
                "  double upwind = 0.0;";
                "  if (vface > 0.0) {";
                Printf.sprintf "    upwind = %s;" (a "density" "i");
                "  } else {";
                Printf.sprintf "    upwind = %s;" (a "density" "i + 1");
                "  }";
                Printf.sprintf "  %s = vface * upwind;" (a "flux" "i");
                "}";
              ])
      in
      let k_advec =
        Emit.map_kernel g ~name:"advec_cell" ~n:nn ~arrays:[ "density"; "flux" ]
          ~scalars:[ ("int", "nx"); ("int", "ny"); ("double", "dt") ]
          ~body:
            (xy_prelude
            @ [
                "double inflow = 0.0;";
                "if (x > 0) {";
                Printf.sprintf "  inflow = %s;" (a "flux" "i - 1");
                "}";
                Printf.sprintf "%s = %s + dt * (inflow - %s);" (a "density" "i")
                  (a "density" "i") (a "flux" "i");
              ])
      in
      let k_mass =
        Emit.reduce_kernel g ~name:"summary_mass" ~n:nn ~arrays:[ "density" ] ~scalars:[]
          ~result:"total_mass" ~expr:(a "density" "i")
      in
      let k_ie =
        Emit.reduce_kernel g ~name:"summary_ie" ~n:nn ~arrays:[ "density"; "energy" ]
          ~scalars:[] ~result:"total_ie"
          ~expr:(Printf.sprintf "%s * %s" (a "density" "i") (a "energy" "i"))
      in
      let k_ke =
        Emit.reduce_kernel g ~name:"summary_ke" ~n:nn
          ~arrays:[ "density"; "xvel"; "yvel" ] ~scalars:[] ~result:"total_ke"
          ~expr:
            (Printf.sprintf "0.5 * %s * (%s * %s + %s * %s)" (a "density" "i")
               (a "xvel" "i") (a "xvel" "i") (a "yvel" "i") (a "yvel" "i"))
      in
      let k_press =
        Emit.reduce_kernel g ~name:"summary_press" ~n:nn ~arrays:[ "pressure" ]
          ~scalars:[] ~result:"total_press" ~expr:(a "pressure" "i")
      in
      (* field_summary lives in its own translation unit, like the real
         CloverLeaf's per-kernel source files — this exercises the
         multi-unit match of Eq. (1)/(6) *)
      let ctx = Emit.ctx_params g in
      let ctx_decl = List.map (fun (ty, nm) -> ty ^ nm) ctx in
      let ctx_args = List.map snd ctx in
      let summary_fn fname result arrays (kernel : string list * string list) =
        let params =
          String.concat ", "
            (ctx_decl @ List.map (Emit.arr_param g) arrays @ [ "int nn" ])
        in
        [
          Printf.sprintf "double %s(%s) {" fname params;
          Printf.sprintf "  double %s = 0.0;" result;
        ]
        @ Emit.indent_block (snd kernel)
        @ [ Printf.sprintf "  return %s;" result; "}" ]
      in
      let summary_proto fname arrays =
        Printf.sprintf "double %s(%s);" fname
          (String.concat ", "
             (ctx_decl @ List.map (Emit.arr_param g) arrays @ [ "int nn" ]))
      in
      let summary_call fname result arrays =
        Printf.sprintf "%s = %s(%s);" result fname
          (String.concat ", " (ctx_args @ arrays @ [ "nn" ]))
      in
      let summaries =
        [
          ("compute_total_mass", "total_mass", [ "density" ], k_mass);
          ("compute_total_ie", "total_ie", [ "density"; "energy" ], k_ie);
          ("compute_total_ke", "total_ke", [ "density"; "xvel"; "yvel" ], k_ke);
          ("compute_total_press", "total_press", [ "pressure" ], k_press);
        ]
      in
      let summary_unit =
        Emit.render_support
          ~header_comment:
            (Printf.sprintf "CloverLeaf (%s port): field_summary reductions"
               (Emit.model_name g))
          ~tops:(List.concat_map (fun (_, _, _, k) -> fst k) summaries)
          ~functions:
            (List.concat_map
               (fun (fname, result, arrays, k) ->
                 summary_fn fname result arrays k @ [ "" ])
               summaries)
          g
      in
      let kernels =
        [ k_initialise; k_ideal_gas; k_viscosity; k_accelerate; k_pdv; k_flux; k_advec ]
      in
      let tops =
        List.concat_map fst kernels
        @ List.map (fun (fname, _, arrays, _) -> summary_proto fname arrays) summaries
      in
      let fields =
        [ "density"; "energy"; "pressure"; "soundspeed"; "xvel"; "yvel"; "work"; "flux" ]
      in
      let main_body =
        [
          Printf.sprintf "const int nx = %d;" nx;
          Printf.sprintf "const int ny = %d;" ny;
          "const int nn = nx * ny;";
          Printf.sprintf "const int end_step = %d;" steps;
          "const double dt = 0.04;";
          "double total_mass = 0.0;";
          "double total_ie = 0.0;";
          "double total_ke = 0.0;";
          "double total_press = 0.0;";
        ]
        @ List.concat_map (fun f -> Emit.alloc g ~name:f ~n:nn) fields
        @ snd k_initialise
        @ [ summary_call "compute_total_mass" "total_mass" [ "density" ];
            "const double initial_mass = total_mass;" ]
        @ [ "for (int step = 0; step < end_step; step++) {" ]
        @ Emit.indent_block
            (snd k_ideal_gas @ snd k_viscosity @ snd k_accelerate @ snd k_pdv
            @ snd k_flux @ snd k_advec)
        @ [ "}" ]
        @ snd k_ideal_gas
        @ List.map
            (fun (fname, result, arrays, _) -> summary_call fname result arrays)
            summaries
        @ [
            "printf(\"step %d complete\\n\", end_step);";
            "printf(\"mass %f ie %f ke %f pressure %f\\n\", total_mass, total_ie, total_ke, total_press);";
            "const double mass_drift = fabs(total_mass - initial_mass) / initial_mass;";
            "if (mass_drift < 1.0e-12 && total_ie > 0.0 && total_ke >= 0.0 && total_press > 0.0) {";
            "  printf(\"field summary check PASSED\\n\");";
            "} else {";
            "  printf(\"field summary check FAILED\\n\");";
            "  return 1;";
            "}";
          ]
        @ List.concat_map (fun f -> Emit.dealloc g ~name:f ~n:nn) fields
      in
      let source =
        Emit.render
          ~header_comment:
            (Printf.sprintf
               "CloverLeaf (%s port): explicit compressible hydrodynamics on a staggered grid"
               (Emit.model_name g))
          ~tops ~main_body g
      in
      let summary_file = Printf.sprintf "clover_summary_%s.cpp" model in
      Some
        (Emit.wrap ~app:"cloverleaf" g ~source
           ~main_file:(Printf.sprintf "clover_%s.cpp" model)
           ~extra:[ (summary_file, summary_unit) ] ())

let all () = List.filter_map (fun m -> codebase ~model:m) Emit.all_ids
