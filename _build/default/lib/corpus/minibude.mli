(** miniBUDE (C++): compute-bound molecular-docking kernel.

    Mirrors UoB-HPC/miniBUDE: one hot kernel ([fasten_main]) that, for
    every candidate pose, rotates the ligand and accumulates a pairwise
    ligand–protein interaction energy. Compute-bound with a deep inner
    loop — the opposite profile to BabelStream, which is why the paper
    pairs them (Table II).

    Verification: kernel energies are checked against a reference
    computed by the built-in serial evaluation of the same docking
    function, mirroring the real mini-app's reference-energies check. *)

val codebase : model:string -> Emit.codebase option
val all : unit -> Emit.codebase list

val nposes : int
val natlig : int
val natpro : int
