type codebase = {
  app : string;
  model : string;
  model_name : string;
  lang : [ `C | `F ];
  main_file : string;
  extra_units : string list;
  files : (string * string) list;
  system_headers : string list;
  defines : (string * string) list;
}

type gen = {
  g_id : string;
  g_name : string;
  g_includes : string list;
  g_tops : string list;
  g_prologue : string list;
  g_epilogue : string list;
  g_alloc : name:string -> n:string -> string list;
  g_dealloc : name:string -> n:string -> string list;
  g_arr : string -> string -> string;
  g_map :
    name:string -> n:string -> arrays:string list -> scalars:(string * string) list ->
    body:string list -> string list * string list;
  g_reduce :
    name:string -> n:string -> arrays:string list -> scalars:(string * string) list ->
    result:string -> expr:string -> string list * string list;
  g_read_back : host:string -> dev:string -> n:string -> string list;
  g_arr_param : string -> string;
  g_ctx_params : (string * string) list;
}

let indent pfx = List.map (fun l -> if l = "" then l else pfx ^ l)
let deref a i = Printf.sprintf "%s[%s]" a i
let paren a i = Printf.sprintf "%s(%s)" a i

(* ---------------------------------------------------------------- *)
(* Serial                                                            *)
(* ---------------------------------------------------------------- *)

let plain_alloc ~name ~n = [ Printf.sprintf "double *%s = new double[%s];" name n ]
let plain_dealloc ~name ~n:_ = [ Printf.sprintf "delete[] %s;" name ]

let serial_loop ~n ~body =
  (Printf.sprintf "for (int i = 0; i < %s; i++) {" n :: indent "  " body) @ [ "}" ]

let gen_serial =
  {
    g_id = "serial";
    g_name = "Serial";
    g_includes = [];
    g_tops = [];
    g_prologue = [];
    g_epilogue = [];
    g_alloc = plain_alloc;
    g_dealloc = plain_dealloc;
    g_arr = deref;
    g_map = (fun ~name:_ ~n ~arrays:_ ~scalars:_ ~body -> ([], serial_loop ~n ~body));
    g_reduce =
      (fun ~name:_ ~n ~arrays:_ ~scalars:_ ~result ~expr ->
        ( [],
          (Printf.sprintf "%s = 0.0;" result)
          :: serial_loop ~n ~body:[ Printf.sprintf "%s += %s;" result expr ] ));
    g_read_back = (fun ~host:_ ~dev:_ ~n:_ -> []);
    g_arr_param = (fun name -> "double *" ^ name);
    g_ctx_params = [];
  }

(* ---------------------------------------------------------------- *)
(* OpenMP (host)                                                     *)
(* ---------------------------------------------------------------- *)

let gen_omp =
  {
    gen_serial with
    g_id = "omp";
    g_name = "OpenMP";
    g_includes = [ "omp.h" ];
    g_map =
      (fun ~name:_ ~n ~arrays:_ ~scalars:_ ~body ->
        ([], "#pragma omp parallel for" :: serial_loop ~n ~body));
    g_reduce =
      (fun ~name:_ ~n ~arrays:_ ~scalars:_ ~result ~expr ->
        ( [],
          [ Printf.sprintf "%s = 0.0;" result;
            Printf.sprintf "#pragma omp parallel for reduction(+ : %s)" result ]
          @ serial_loop ~n ~body:[ Printf.sprintf "%s += %s;" result expr ] ));
  }

(* ---------------------------------------------------------------- *)
(* OpenMP target                                                     *)
(* ---------------------------------------------------------------- *)

let gen_omp_target =
  {
    gen_serial with
    g_id = "omp-target";
    g_name = "OpenMP target";
    g_includes = [ "omp.h" ];
    g_alloc =
      (fun ~name ~n ->
        [
          Printf.sprintf "double *%s = new double[%s];" name n;
          Printf.sprintf "#pragma omp target enter data map(alloc: %s[0:%s])" name n;
        ]);
    g_dealloc =
      (fun ~name ~n ->
        [
          Printf.sprintf "#pragma omp target exit data map(release: %s[0:%s])" name n;
          Printf.sprintf "delete[] %s;" name;
        ]);
    g_map =
      (fun ~name:_ ~n ~arrays:_ ~scalars:_ ~body ->
        ([], "#pragma omp target teams distribute parallel for" :: serial_loop ~n ~body));
    g_reduce =
      (fun ~name:_ ~n ~arrays:_ ~scalars:_ ~result ~expr ->
        ( [],
          [ Printf.sprintf "%s = 0.0;" result;
            Printf.sprintf
              "#pragma omp target teams distribute parallel for map(tofrom: %s) reduction(+ : %s)"
              result result ]
          @ serial_loop ~n ~body:[ Printf.sprintf "%s += %s;" result expr ] ));
    g_read_back =
      (fun ~host ~dev ~n ->
        [
          Printf.sprintf "#pragma omp target update from(%s[0:%s])" dev n;
          Printf.sprintf "double *%s = %s;" host dev;
        ]);
  }

(* ---------------------------------------------------------------- *)
(* CUDA / HIP                                                        *)
(* ---------------------------------------------------------------- *)

let kernel_params arrays scalars =
  String.concat ", "
    (List.map (fun a -> "double *" ^ a) arrays
    @ List.map (fun (ty, s) -> ty ^ " " ^ s) scalars
    @ [ "int n" ])

let kernel_args arrays scalars extra n =
  String.concat ", " (arrays @ List.map snd scalars @ extra @ [ n ])

let gen_gpu ~id ~name ~api =
  (* [api] is "cuda" or "hip": runtime function prefix and header name *)
  let sync = Printf.sprintf "%sDeviceSynchronize();" api in
  let memcpy_dh = Printf.sprintf "%sMemcpyDeviceToHost" api in
  {
    g_id = id;
    g_name = name;
    g_includes = [ api ^ ".h" ];
    g_tops = [ "#define TBSIZE 256" ];
    g_prologue = [];
    g_epilogue = [];
    g_alloc =
      (fun ~name ~n ->
        [
          Printf.sprintf "double *%s;" name;
          Printf.sprintf "%sMalloc((void **)&%s, %s * sizeof(double));" api name n;
        ]);
    g_dealloc = (fun ~name ~n:_ -> [ Printf.sprintf "%sFree(%s);" api name ]);
    g_arr = deref;
    g_map =
      (fun ~name ~n ~arrays ~scalars ~body ->
        let defs =
          [
            Printf.sprintf "__global__ void %s_kernel(%s) {" name
              (kernel_params arrays scalars);
            "  const int i = blockDim.x * blockIdx.x + threadIdx.x;";
            "  if (i < n) {";
          ]
          @ indent "    " body
          @ [ "  }"; "}" ]
        in
        let calls =
          [
            Printf.sprintf "%s_kernel<<<(%s + TBSIZE - 1) / TBSIZE, TBSIZE>>>(%s);" name n
              (kernel_args arrays scalars [] n);
            sync;
          ]
        in
        (defs, calls));
    g_reduce =
      (fun ~name ~n ~arrays ~scalars ~result ~expr ->
        let defs =
          [
            Printf.sprintf "__global__ void %s_kernel(%s) {" name
              (kernel_params (arrays @ [ name ^ "_partials" ]) scalars);
            "  const int i = blockDim.x * blockIdx.x + threadIdx.x;";
            "  if (i < n) {";
            Printf.sprintf "    %s_partials[blockIdx.x] += %s;" name expr;
            "  }";
            "}";
          ]
        in
        let calls =
          [
            Printf.sprintf "const int %s_blocks = (%s + TBSIZE - 1) / TBSIZE;" name n;
            Printf.sprintf "double *%s_partials;" name;
            Printf.sprintf "%sMalloc((void **)&%s_partials, %s_blocks * sizeof(double));" api
              name name;
            Printf.sprintf "%sMemset(%s_partials, 0, %s_blocks * sizeof(double));" api name
              name;
            Printf.sprintf "%s_kernel<<<%s_blocks, TBSIZE>>>(%s);" name name
              (kernel_args arrays scalars [ name ^ "_partials" ] n);
            sync;
            Printf.sprintf "double *%s_host = new double[%s_blocks];" name name;
            Printf.sprintf "%sMemcpy(%s_host, %s_partials, %s_blocks * sizeof(double), %s);"
              api name name name memcpy_dh;
            Printf.sprintf "%s = 0.0;" result;
            Printf.sprintf "for (int blk = 0; blk < %s_blocks; blk++) {" name;
            Printf.sprintf "  %s += %s_host[blk];" result name;
            "}";
            Printf.sprintf "%sFree(%s_partials);" api name;
            Printf.sprintf "delete[] %s_host;" name;
          ]
        in
        (defs, calls));
    g_read_back =
      (fun ~host ~dev ~n ->
        [
          Printf.sprintf "double *%s = new double[%s];" host n;
          Printf.sprintf "%sMemcpy(%s, %s, %s * sizeof(double), %s);" api host dev n
            memcpy_dh;
        ]);
    g_arr_param = (fun name -> "double *" ^ name);
    g_ctx_params = [];
  }

let gen_cuda = gen_gpu ~id:"cuda" ~name:"CUDA" ~api:"cuda"
let gen_hip = gen_gpu ~id:"hip" ~name:"HIP" ~api:"hip"

(* ---------------------------------------------------------------- *)
(* SYCL (USM)                                                        *)
(* ---------------------------------------------------------------- *)

let gen_sycl_usm =
  {
    g_id = "sycl-usm";
    g_name = "SYCL (USM)";
    g_includes = [ "sycl.h" ];
    g_tops = [ "#define WGSIZE 256" ];
    g_prologue = [ "sycl::queue q;" ];
    g_epilogue = [];
    g_alloc =
      (fun ~name ~n ->
        [
          Printf.sprintf "double *%s = (double *)sycl::malloc_shared(%s * sizeof(double), q);"
            name n;
        ]);
    g_dealloc = (fun ~name ~n:_ -> [ Printf.sprintf "sycl::free(%s, q);" name ]);
    g_arr = deref;
    g_map =
      (fun ~name:_ ~n ~arrays:_ ~scalars:_ ~body ->
        ( [],
          [ Printf.sprintf "q.parallel_for(sycl::range<1>(%s), [=](sycl::id<1> i) {" n ]
          @ indent "  " body
          @ [ "});"; "q.wait();" ] ));
    g_reduce =
      (fun ~name ~n ~arrays:_ ~scalars:_ ~result ~expr ->
        ( [],
          [
            Printf.sprintf "const int %s_groups = (%s + WGSIZE - 1) / WGSIZE;" name n;
            Printf.sprintf
              "double *%s_partials = (double *)sycl::malloc_shared(%s_groups * sizeof(double), q);"
              name name;
            Printf.sprintf "q.parallel_for(sycl::range<1>(%s_groups), [=](sycl::id<1> g) {"
              name;
            "  double acc = 0.0;";
            Printf.sprintf "  for (int i = g * WGSIZE; i < %s && i < (g + 1) * WGSIZE; i++) {" n;
            Printf.sprintf "    acc += %s;" expr;
            "  }";
            Printf.sprintf "  %s_partials[g] = acc;" name;
            "});";
            "q.wait();";
            Printf.sprintf "%s = 0.0;" result;
            Printf.sprintf "for (int g = 0; g < %s_groups; g++) {" name;
            Printf.sprintf "  %s += %s_partials[g];" result name;
            "}";
            Printf.sprintf "sycl::free(%s_partials, q);" name;
          ] ));
    g_read_back = (fun ~host:_ ~dev:_ ~n:_ -> []);
    g_arr_param = (fun name -> "double *" ^ name);
    g_ctx_params = [ ("sycl::queue &", "q") ];
  }

(* ---------------------------------------------------------------- *)
(* SYCL (Accessors)                                                  *)
(* ---------------------------------------------------------------- *)

let acc_name a = "acc_" ^ a

let gen_sycl_acc =
  {
    g_id = "sycl-acc";
    g_name = "SYCL (Accessors)";
    g_includes = [ "sycl.h" ];
    g_tops = [ "#define WGSIZE 256" ];
    g_prologue = [ "sycl::queue q;" ];
    g_epilogue = [];
    g_alloc = (fun ~name ~n -> [ Printf.sprintf "sycl::buffer<double, 1> %s(%s);" name n ]);
    g_dealloc = (fun ~name:_ ~n:_ -> []);
    g_arr = (fun a i -> deref (acc_name a) i);
    g_map =
      (fun ~name ~n ~arrays ~scalars:_ ~body ->
        ( [],
          [ "q.submit([&](sycl::handler &h) {" ]
          @ List.map
              (fun a -> Printf.sprintf "  auto %s = %s.get_access(h);" (acc_name a) a)
              arrays
          @ [
              Printf.sprintf
                "  h.parallel_for<class %s_k>(sycl::range<1>(%s), [=](sycl::id<1> i) {" name n;
            ]
          @ indent "    " body
          @ [ "  });"; "});"; "q.wait();" ] ));
    g_reduce =
      (fun ~name ~n ~arrays ~scalars:_ ~result ~expr ->
        ( [],
          [
            Printf.sprintf "const int %s_groups = (%s + WGSIZE - 1) / WGSIZE;" name n;
            Printf.sprintf "sycl::buffer<double, 1> %s_partials(%s_groups);" name name;
            "q.submit([&](sycl::handler &h) {";
          ]
          @ List.map
              (fun a -> Printf.sprintf "  auto %s = %s.get_access(h);" (acc_name a) a)
              arrays
          @ [
              Printf.sprintf "  auto %s = %s_partials.get_access(h);" (acc_name (name ^ "_partials")) name;
              Printf.sprintf
                "  h.parallel_for<class %s_k>(sycl::range<1>(%s_groups), [=](sycl::id<1> g) {"
                name name;
              "    double acc = 0.0;";
              Printf.sprintf "    for (int i = g * WGSIZE; i < %s && i < (g + 1) * WGSIZE; i++) {" n;
              Printf.sprintf "      acc += %s;" expr;
              "    }";
              Printf.sprintf "    %s[g] = acc;" (acc_name (name ^ "_partials"));
              "  });";
              "});";
              "q.wait();";
              Printf.sprintf "auto %s_hp = %s_partials.get_host_access();" name name;
              Printf.sprintf "%s = 0.0;" result;
              Printf.sprintf "for (int g = 0; g < %s_groups; g++) {" name;
              Printf.sprintf "  %s += %s_hp[g];" result name;
              "}";
            ] ));
    g_read_back =
      (fun ~host ~dev ~n:_ ->
        [ Printf.sprintf "auto %s = %s.get_host_access();" host dev ]);
    g_arr_param = (fun name -> "sycl::buffer<double, 1> &" ^ name);
    g_ctx_params = [ ("sycl::queue &", "q") ];
  }

(* ---------------------------------------------------------------- *)
(* Kokkos                                                            *)
(* ---------------------------------------------------------------- *)

let gen_kokkos =
  {
    g_id = "kokkos";
    g_name = "Kokkos";
    g_includes = [ "kokkos.h" ];
    g_tops = [];
    g_prologue = [ "Kokkos::initialize();" ];
    g_epilogue = [ "Kokkos::finalize();" ];
    g_alloc =
      (fun ~name ~n ->
        [ Printf.sprintf "Kokkos::View<double*> %s(\"%s\", %s);" name name n ]);
    g_dealloc = (fun ~name:_ ~n:_ -> []);
    g_arr = paren;
    g_map =
      (fun ~name ~n ~arrays:_ ~scalars:_ ~body ->
        ( [],
          [ Printf.sprintf "Kokkos::parallel_for(\"%s\", %s, KOKKOS_LAMBDA(const int i) {" name n ]
          @ indent "  " body
          @ [ "});"; "Kokkos::fence();" ] ));
    g_reduce =
      (fun ~name ~n ~arrays:_ ~scalars:_ ~result ~expr ->
        ( [],
          [
            Printf.sprintf
              "Kokkos::parallel_reduce(\"%s\", %s, KOKKOS_LAMBDA(const int i, double &acc) {"
              name n;
            Printf.sprintf "  acc += %s;" expr;
            Printf.sprintf "}, &%s);" result;
          ] ));
    g_read_back = (fun ~host:_ ~dev:_ ~n:_ -> []);
    g_arr_param = (fun name -> "Kokkos::View<double*> " ^ name);
    g_ctx_params = [];
  }

(* ---------------------------------------------------------------- *)
(* TBB                                                               *)
(* ---------------------------------------------------------------- *)

let tbb_range_loop body =
  [ "  for (int i = rng.begin(); i < rng.end(); i++) {" ] @ indent "    " body @ [ "  }" ]

let gen_tbb =
  {
    g_id = "tbb";
    g_name = "TBB";
    g_includes = [ "tbb.h" ];
    g_tops = [];
    g_prologue = [];
    g_epilogue = [];
    g_alloc = plain_alloc;
    g_dealloc = plain_dealloc;
    g_arr = deref;
    g_map =
      (fun ~name:_ ~n ~arrays:_ ~scalars:_ ~body ->
        ( [],
          [
            Printf.sprintf
              "tbb::parallel_for(tbb::blocked_range<int>(0, %s), [=](tbb::blocked_range<int> rng) {"
              n;
          ]
          @ tbb_range_loop body
          @ [ "});" ] ));
    g_reduce =
      (fun ~name:_ ~n ~arrays:_ ~scalars:_ ~result ~expr ->
        ( [],
          [
            Printf.sprintf
              "%s = tbb::parallel_reduce(tbb::blocked_range<int>(0, %s), 0.0, [=](tbb::blocked_range<int> rng, double acc) {"
              result n;
          ]
          @ tbb_range_loop [ Printf.sprintf "acc += %s;" expr ]
          @ [ "  return acc;"; "}, [=](double x, double y) { return x + y; });" ] ));
    g_read_back = (fun ~host:_ ~dev:_ ~n:_ -> []);
    g_arr_param = (fun name -> "double *" ^ name);
    g_ctx_params = [];
  }

(* ---------------------------------------------------------------- *)
(* StdPar                                                            *)
(* ---------------------------------------------------------------- *)

let gen_stdpar =
  {
    g_id = "stdpar";
    g_name = "StdPar";
    g_includes = [ "stdpar.h" ];
    g_tops = [];
    g_prologue = [];
    g_epilogue = [];
    g_alloc = plain_alloc;
    g_dealloc = plain_dealloc;
    g_arr = deref;
    g_map =
      (fun ~name:_ ~n ~arrays:_ ~scalars:_ ~body ->
        ( [],
          [
            Printf.sprintf
              "std::for_each(std::execution::par_unseq, counting_iterator(0), counting_iterator(%s), [=](int i) {"
              n;
          ]
          @ indent "  " body
          @ [ "});" ] ));
    g_reduce =
      (fun ~name:_ ~n ~arrays:_ ~scalars:_ ~result ~expr ->
        ( [],
          [
            Printf.sprintf
              "%s = std::transform_reduce(std::execution::par_unseq, counting_iterator(0), counting_iterator(%s), 0.0, [=](double x, double y) {"
              result n;
            "  return x + y;";
            "}, [=](int i) {";
            Printf.sprintf "  return %s;" expr;
            "});";
          ] ));
    g_read_back = (fun ~host:_ ~dev:_ ~n:_ -> []);
    g_arr_param = (fun name -> "double *" ^ name);
    g_ctx_params = [];
  }

(* ---------------------------------------------------------------- *)
(* RAJA (extension model: mentioned alongside Kokkos in the paper's  *)
(* introduction but not part of the Table II evaluation)             *)
(* ---------------------------------------------------------------- *)

let gen_raja =
  {
    g_id = "raja";
    g_name = "RAJA";
    g_includes = [ "raja.h" ];
    g_tops = [];
    g_prologue = [];
    g_epilogue = [];
    g_alloc = plain_alloc;
    g_dealloc = plain_dealloc;
    g_arr = deref;
    g_map =
      (fun ~name:_ ~n ~arrays:_ ~scalars:_ ~body ->
        ( [],
          [
            Printf.sprintf
              "RAJA::forall<RAJA::omp_parallel_for_exec>(RAJA::RangeSegment(0, %s), [=](int i) {"
              n;
          ]
          @ indent "  " body
          @ [ "});" ] ));
    g_reduce =
      (fun ~name ~n ~arrays:_ ~scalars:_ ~result ~expr ->
        ( [],
          [
            Printf.sprintf
              "RAJA::ReduceSum<RAJA::omp_reduce, double> %s_red(0.0);" name;
            Printf.sprintf
              "RAJA::forall<RAJA::omp_parallel_for_exec>(RAJA::RangeSegment(0, %s), [=](int i) {"
              n;
            Printf.sprintf "  %s_red += %s;" name expr;
            "});";
            Printf.sprintf "%s = %s_red.get();" result name;
          ] ));
    g_read_back = (fun ~host:_ ~dev:_ ~n:_ -> []);
    g_arr_param = (fun name -> "double *" ^ name);
    g_ctx_params = [];
  }

(* ---------------------------------------------------------------- *)

let evaluated =
  [
    gen_serial; gen_omp; gen_omp_target; gen_cuda; gen_hip;
    gen_sycl_usm; gen_sycl_acc; gen_kokkos; gen_tbb; gen_stdpar;
  ]

let all = evaluated @ [ gen_raja ]

let all_ids = List.map (fun g -> g.g_id) evaluated
let extended_ids = List.map (fun g -> g.g_id) all
let gen_for id = List.find_opt (fun g -> g.g_id = id) all
let model_name g = g.g_name
let includes g = g.g_includes
let prologue g = g.g_prologue
let epilogue g = g.g_epilogue
let alloc g = g.g_alloc
let dealloc g = g.g_dealloc
let arr g = g.g_arr
let map_kernel g = g.g_map
let reduce_kernel g = g.g_reduce
let read_back g = g.g_read_back
let arr_param g = g.g_arr_param
let ctx_params g = g.g_ctx_params

let indent_block = indent "  "

let render_support ~header_comment ~tops ~functions g =
  let b = Buffer.create 4096 in
  let line l =
    Buffer.add_string b l;
    Buffer.add_char b '\n'
  in
  line ("// " ^ header_comment);
  List.iter (fun h -> line (Printf.sprintf "#include \"%s\"" h)) [ "stdio.h"; "stdlib.h"; "math.h" ];
  List.iter (fun h -> line (Printf.sprintf "#include \"%s\"" h)) g.g_includes;
  line "";
  List.iter line g.g_tops;
  List.iter line tops;
  line "";
  List.iter line functions;
  Buffer.contents b

let render ~header_comment ~tops ~main_body g =
  let b = Buffer.create 4096 in
  let line l =
    Buffer.add_string b l;
    Buffer.add_char b '\n'
  in
  line ("// " ^ header_comment);
  List.iter (fun h -> line (Printf.sprintf "#include \"%s\"" h)) [ "stdio.h"; "stdlib.h"; "math.h" ];
  List.iter (fun h -> line (Printf.sprintf "#include \"%s\"" h)) g.g_includes;
  line "";
  List.iter line g.g_tops;
  List.iter line tops;
  line "";
  line "int main() {";
  List.iter line (indent "  " (g.g_prologue @ main_body @ g.g_epilogue));
  line "  return 0;";
  line "}";
  Buffer.contents b

let wrap ?(extra = []) ~app g ~source ~main_file () =
  {
    app;
    model = g.g_id;
    model_name = g.g_name;
    lang = `C;
    main_file;
    extra_units = List.map fst extra;
    files = (((main_file, source) :: extra) @ Shim.for_model g.g_id) @ Shim.system;
    system_headers = Shim.system_names;
    defines = [];
  }
