lib/cluster/cluster.mli:
