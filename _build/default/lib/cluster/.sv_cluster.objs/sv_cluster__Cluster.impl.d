lib/cluster/cluster.ml: Array Float List
