type 'a t = Node of 'a * 'a t list

let leaf x = Node (x, [])
let node x cs = Node (x, cs)
let label (Node (x, _)) = x
let children (Node (_, cs)) = cs

let rec size (Node (_, cs)) = List.fold_left (fun acc c -> acc + size c) 1 cs

let rec depth (Node (_, cs)) =
  1 + List.fold_left (fun acc c -> max acc (depth c)) 0 cs

let rec map f (Node (x, cs)) = Node (f x, List.map (map f) cs)
let rec fold f (Node (x, cs)) = f x (List.map (fold f) cs)

let preorder t =
  let rec go acc (Node (x, cs)) = List.fold_left go (x :: acc) cs in
  List.rev (go [] t)

let postorder t =
  let rec go (Node (x, cs)) acc = List.fold_right go cs (x :: acc) in
  go t []

let leaves t =
  let rec go (Node (x, cs)) acc =
    match cs with [] -> x :: acc | _ -> List.fold_right go cs acc
  in
  go t []

let count p t = fold (fun x sub -> (if p x then 1 else 0) + List.fold_left ( + ) 0 sub) t
let exists p t = fold (fun x sub -> p x || List.exists Fun.id sub) t

let rec filter_prune keep (Node (x, cs)) =
  if not (keep x) then None
  else Some (Node (x, List.filter_map (filter_prune keep) cs))

let filter_splice keep t =
  let rec go (Node (x, cs)) =
    let sub = List.concat_map go cs in
    if keep x then [ Node (x, sub) ] else sub
  in
  match go t with
  | [] -> None
  | [ t ] -> Some t
  | Node (x, cs) :: rest -> Some (Node (x, cs @ rest))

let rec equal eq (Node (a, ca)) (Node (b, cb)) =
  eq a b
  && List.length ca = List.length cb
  && List.for_all2 (equal eq) ca cb

let hash h t =
  fold
    (fun x sub ->
      List.fold_left (fun acc s -> (acc * 1000003) lxor s) (h x lxor 0x5bd1e995) sub
      land max_int)
    t

let pp pp_label fmt t =
  let rec go indent (Node (x, cs)) =
    Format.fprintf fmt "%s%a@\n" indent pp_label x;
    List.iter (go (indent ^ "  ")) cs
  in
  go "" t

let flatten_forest root ts = Node (root, ts)
