lib/tree/label.ml: Format Hashtbl List String Sv_util Tree
