lib/tree/label.mli: Format Sv_util Tree
