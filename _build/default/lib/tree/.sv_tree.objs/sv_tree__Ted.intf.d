lib/tree/ted.mli: Tree
