lib/tree/tree.ml: Format Fun List
