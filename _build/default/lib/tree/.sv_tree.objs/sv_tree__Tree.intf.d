lib/tree/tree.mli: Format
