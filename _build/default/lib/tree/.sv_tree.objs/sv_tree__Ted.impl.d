lib/tree/ted.ml: Array Hashtbl List Obj Tree
