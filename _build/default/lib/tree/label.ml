type t = { kind : string; text : string; loc : Sv_util.Loc.t }

let v ?(text = "") ?(loc = Sv_util.Loc.none) kind = { kind; text; loc }
let equal a b = String.equal a.kind b.kind && String.equal a.text b.text
let hash a = Hashtbl.hash (a.kind, a.text)

let pp fmt l =
  if l.text = "" then Format.pp_print_string fmt l.kind
  else Format.fprintf fmt "%s(%s)" l.kind l.text

type tree = t Tree.t

let strip_locs t = Tree.map (fun l -> { l with loc = Sv_util.Loc.none }) t
let spine t = List.map (fun l -> l.kind) (Tree.preorder t)
