(** Labels for semantic-bearing tree nodes.

    Every tree the pipeline produces — [T_src], [T_sem], [T_ir] — carries
    this label: a node [kind] (the only part TED compares by default, per
    the paper's name-normalisation rule of §III-B), an optional [text]
    payload (operator spelling, literal value, directive clause — the
    things §IV-A says are retained), and a source back-reference. *)

type t = {
  kind : string;  (** node category, e.g. ["for"], ["call"], ["omp:parallel"] *)
  text : string;  (** retained payload; [""] for anonymised names *)
  loc : Sv_util.Loc.t;  (** source back-reference; [Loc.none] if synthesised *)
}

val v : ?text:string -> ?loc:Sv_util.Loc.t -> string -> t
(** [v kind] builds a label; [text] defaults to [""], [loc] to
    [Loc.none]. *)

val equal : t -> t -> bool
(** TED label equality: kind and text must match; the location is ignored
    (two ports never share positions, and the paper compares structure,
    not placement). *)

val hash : t -> int
(** Hash consistent with {!equal}. *)

val pp : Format.formatter -> t -> unit
(** Renders ["kind"] or ["kind(text)"]. *)

type tree = t Tree.t
(** The concrete tree type used across the pipeline. *)

val strip_locs : tree -> tree
(** [strip_locs t] zeroes all locations — used to compare trees for
    structural identity in tests. *)

val spine : tree -> string list
(** [spine t] is the preorder list of kinds; a cheap fingerprint for
    tests and debugging. *)
