(** Generic ordered, labelled rose trees.

    Semantic-bearing trees ([T_src], [T_sem], [T_ir], §III-A of the paper)
    are all instances of this one structure with different label
    conventions. Children are ordered, as required by tree edit
    distance. *)

type 'a t = Node of 'a * 'a t list
(** A node carrying a label and an ordered list of children. *)

val leaf : 'a -> 'a t
(** [leaf x] is a node with no children. *)

val node : 'a -> 'a t list -> 'a t
(** [node x cs] builds an interior node. *)

val label : 'a t -> 'a
(** [label t] is the root label. *)

val children : 'a t -> 'a t list
(** [children t] are the root's ordered children. *)

val size : 'a t -> int
(** [size t] is the total number of nodes; this is the |T| of Eq. (7),
    used for the maximum-divergence bound [dmax]. *)

val depth : 'a t -> int
(** [depth t] is the number of nodes on the longest root-to-leaf path
    (a leaf has depth 1). *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** [map f t] relabels every node. *)

val fold : ('a -> 'b list -> 'b) -> 'a t -> 'b
(** [fold f t] bottom-up catamorphism: children results are passed in
    order. *)

val preorder : 'a t -> 'a list
(** [preorder t] lists labels root-first. *)

val postorder : 'a t -> 'a list
(** [postorder t] lists labels children-first (the order Zhang–Shasha
    numbers nodes in). *)

val leaves : 'a t -> 'a list
(** [leaves t] lists the labels of leaf nodes, left to right. *)

val count : ('a -> bool) -> 'a t -> int
(** [count p t] counts nodes whose label satisfies [p]. *)

val exists : ('a -> bool) -> 'a t -> bool
(** [exists p t] tests whether any node label satisfies [p]. *)

val filter_prune : ('a -> bool) -> 'a t -> 'a t option
(** [filter_prune keep t] drops every maximal subtree whose root label
    fails [keep]; returns [None] when the root itself is dropped. This is
    the coverage-mask pruning of §III-A (unexecuted regions are removed
    wholesale). *)

val filter_splice : ('a -> bool) -> 'a t -> 'a t option
(** [filter_splice keep t] removes individual nodes failing [keep] but
    splices their children into the parent (like a TED delete). Used to
    strip non-semantic nodes (implicit casts, punctuation) while keeping
    their subtrees. [None] when nothing remains; if the root is removed but
    several children survive, a fresh root is required, so the first
    survivor adopts the rest — callers should keep roots. *)

val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
(** [equal eq a b] is structural equality with label equality [eq]. *)

val hash : ('a -> int) -> 'a t -> int
(** [hash h t] is a structural hash built from [h] on labels; equal trees
    hash equally. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
(** [pp pp_label fmt t] renders an indented outline, one node per line. *)

val flatten_forest : 'a -> 'a t list -> 'a t
(** [flatten_forest root ts] wraps a forest under a synthetic root label,
    turning per-unit trees into the single-codebase tree of §III-C. *)
