(** Tree Edit Distance (TED).

    TED is the minimum-cost sequence of node deletions, insertions and
    relabellings transforming one ordered tree into another (§III-B;
    Bille's survey). The paper uses APTED; we implement the classic
    Zhang–Shasha algorithm, which computes the identical distance (the
    value is algorithm-independent) with the keyroots decomposition in
    O(n₁·n₂·min(d₁,l₁)·min(d₂,l₂)) time and O(n₁·n₂) space — comfortably
    enough for per-unit trees of a few thousand nodes.

    Costs follow the paper: unit weight for every operation, relabelling a
    node to an equal label is free. A custom cost model can be supplied for
    the weighted variants the paper lists as future work. *)

type 'a costs = {
  delete : 'a -> int;  (** cost of deleting a node of the first tree *)
  insert : 'a -> int;  (** cost of inserting a node of the second tree *)
  relabel : 'a -> 'a -> int;
      (** cost of turning a label of the first tree into one of the
          second; must be 0 on equal labels for [distance] to be 0 on
          identical trees *)
}

val unit_costs : ('a -> 'a -> bool) -> 'a costs
(** [unit_costs eq] is the paper's cost model: delete = insert = 1,
    relabel = 0 when [eq] holds and 1 otherwise. *)

val distance : ?costs:'a costs -> eq:('a -> 'a -> bool) -> 'a Tree.t -> 'a Tree.t -> int
(** [distance ~eq t1 t2] is the Zhang–Shasha tree edit distance under
    [costs] (default [unit_costs eq]). Symmetric under unit costs, zero
    iff the trees are equal, and bounded by [Tree.size t1 + Tree.size t2]. *)

val distance_int : int Tree.t -> int Tree.t -> int
(** [distance_int t1 t2] is {!distance} specialised to interned integer
    labels under unit costs — the fast path the metric layer uses (direct
    integer compares, one reused forest-distance buffer). *)

val distance_brute : eq:('a -> 'a -> bool) -> 'a Tree.t -> 'a Tree.t -> int
(** [distance_brute ~eq t1 t2] computes the same unit-cost distance with
    the direct forest recursion plus memoisation. Exponential state space
    in the worst case — only for small trees; it serves as the
    property-test oracle for {!distance}. *)
