(** The platform-independent intermediate representation behind [T_ir].

    An SSA-flavoured, block-structured IR in the spirit of LLVM IR /
    Low GIMPLE (§IV-A, §IV-B): functions of basic blocks, each ending in a
    terminator; typed instructions; module-level globals. Frontends (MiniC
    and MiniF) lower into this one IR, so [T_ir] trees are comparable
    across models exactly as stripped LLVM bitcode is in the paper.

    Following §IV-A, the tree projection {!to_tree} discards all symbol
    names but keeps instruction names, function/block/global structure,
    and per-instruction source back-references (for coverage masks). *)

type ty = I1 | I32 | I64 | F32 | F64 | Ptr | Void

type value =
  | Reg of int        (** SSA register *)
  | ImmI of int       (** integer immediate *)
  | ImmF of float     (** floating immediate *)
  | Glob of string    (** address of a global or function *)
  | Undef

type instr = { i : instr_node; iloc : Sv_util.Loc.t }

and instr_node =
  | Bin of int * string * ty * value * value
      (** [%r = op ty a, b]; op ∈ add/sub/mul/div/rem/and/or/xor/shl/shr *)
  | Cmp of int * string * ty * value * value
      (** [%r = cmp pred ty a, b]; pred ∈ eq/ne/lt/gt/le/ge *)
  | Load of int * ty * value
  | Store of ty * value * value  (** [store ty v, ptr] *)
  | Alloca of int * ty
  | Gep of int * value * value   (** address arithmetic: base + index *)
  | CallI of int option * ty * value * value list
      (** optional result, return type, callee, arguments *)
  | CastI of int * string * ty * value
      (** conversions: [sitofp], [fptosi], [trunc], [ext], [bitcast] *)
  | Select of int * value * value * value

type terminator =
  | Ret of (ty * value) option
  | Br of int                      (** unconditional, target block id *)
  | CondBr of value * int * int    (** condition, then-block, else-block *)
  | Unreachable

type block = { b_id : int; b_instrs : instr list; b_term : terminator }

type linkage = Internal | External

type func_kind =
  | Host          (** ordinary host code *)
  | Device        (** offload kernel / outlined target region *)
  | RuntimeStub   (** synthesised driver/registration code — the offload
                      boilerplate §V-C observes inflating [T_ir] *)

type func = {
  fn_name : string;
  fn_kind : func_kind;
  fn_linkage : linkage;
  fn_ret : ty;
  fn_params : ty list;
  fn_blocks : block list;
}

type global = { g_name : string; g_ty : ty; g_const : bool }

type modul = { m_file : string; m_globals : global list; m_funcs : func list }

val ty_name : ty -> string
(** Stable lowercase spelling: ["i1"], ["f64"], ["ptr"], ... *)

val instr_kind : instr_node -> string
(** The tree-label kind of an instruction, e.g. ["add.f64"], ["load.i32"],
    ["call"]. *)

val to_tree : modul -> Sv_tree.Label.tree
(** [to_tree m] is the [T_ir] of the module: root ["ir-module"], children
    are globals and functions; function kind is reflected in the label
    kind (["ir-function"], ["ir-device-function"], ["ir-stub-function"]),
    names are dropped. *)

val validate : modul -> (unit, string) Result.t
(** Structural well-formedness: block ids unique within a function,
    branch targets exist, every register is defined before use within its
    block sequence (a linear over-approximation of SSA dominance that the
    lowering respects), no empty function bodies. *)

val pp : Format.formatter -> modul -> unit
(** Human-readable listing, LLVM-ish, for debugging and docs. *)
