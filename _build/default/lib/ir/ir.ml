module Tree = Sv_tree.Tree
module Label = Sv_tree.Label

type ty = I1 | I32 | I64 | F32 | F64 | Ptr | Void

type value = Reg of int | ImmI of int | ImmF of float | Glob of string | Undef

type instr = { i : instr_node; iloc : Sv_util.Loc.t }

and instr_node =
  | Bin of int * string * ty * value * value
  | Cmp of int * string * ty * value * value
  | Load of int * ty * value
  | Store of ty * value * value
  | Alloca of int * ty
  | Gep of int * value * value
  | CallI of int option * ty * value * value list
  | CastI of int * string * ty * value
  | Select of int * value * value * value

type terminator =
  | Ret of (ty * value) option
  | Br of int
  | CondBr of value * int * int
  | Unreachable

type block = { b_id : int; b_instrs : instr list; b_term : terminator }
type linkage = Internal | External
type func_kind = Host | Device | RuntimeStub

type func = {
  fn_name : string;
  fn_kind : func_kind;
  fn_linkage : linkage;
  fn_ret : ty;
  fn_params : ty list;
  fn_blocks : block list;
}

type global = { g_name : string; g_ty : ty; g_const : bool }
type modul = { m_file : string; m_globals : global list; m_funcs : func list }

let ty_name = function
  | I1 -> "i1" | I32 -> "i32" | I64 -> "i64"
  | F32 -> "f32" | F64 -> "f64" | Ptr -> "ptr" | Void -> "void"

let instr_kind = function
  | Bin (_, op, ty, _, _) -> Printf.sprintf "%s.%s" op (ty_name ty)
  | Cmp (_, pred, ty, _, _) -> Printf.sprintf "cmp-%s.%s" pred (ty_name ty)
  | Load (_, ty, _) -> "load." ^ ty_name ty
  | Store (ty, _, _) -> "store." ^ ty_name ty
  | Alloca (_, ty) -> "alloca." ^ ty_name ty
  | Gep _ -> "gep"
  | CallI _ -> "call"
  | CastI (_, op, ty, _) -> Printf.sprintf "%s.%s" op (ty_name ty)
  | Select _ -> "select"

(* --- tree projection ------------------------------------------------ *)

let value_leaf ~loc = function
  | Reg _ -> None (* register operands are structural noise *)
  | ImmI n -> Some (Tree.leaf (Label.v ~text:(string_of_int n) ~loc "imm-int"))
  | ImmF f -> Some (Tree.leaf (Label.v ~text:(Printf.sprintf "%.17g" f) ~loc "imm-float"))
  | Glob _ -> Some (Tree.leaf (Label.v ~loc "global-ref"))
  | Undef -> Some (Tree.leaf (Label.v ~loc "undef"))

let instr_tree (ins : instr) =
  let loc = ins.iloc in
  let operands =
    match ins.i with
    | Bin (_, _, _, a, b) | Cmp (_, _, _, a, b) | Gep (_, a, b) -> [ a; b ]
    | Load (_, _, p) -> [ p ]
    | Store (_, v, p) -> [ v; p ]
    | Alloca _ -> []
    | CallI (_, _, callee, args) -> callee :: args
    | CastI (_, _, _, v) -> [ v ]
    | Select (_, c, a, b) -> [ c; a; b ]
  in
  Tree.node
    (Label.v ~loc (instr_kind ins.i))
    (List.filter_map (value_leaf ~loc) operands)

let term_tree t =
  match t with
  | Ret None -> Tree.leaf (Label.v "ret-void")
  | Ret (Some (ty, v)) ->
      Tree.node (Label.v ("ret." ^ ty_name ty))
        (List.filter_map (value_leaf ~loc:Sv_util.Loc.none) [ v ])
  | Br _ -> Tree.leaf (Label.v "br")
  | CondBr (c, _, _) ->
      Tree.node (Label.v "cond-br")
        (List.filter_map (value_leaf ~loc:Sv_util.Loc.none) [ c ])
  | Unreachable -> Tree.leaf (Label.v "unreachable")

let block_tree b =
  Tree.node (Label.v "block") (List.map instr_tree b.b_instrs @ [ term_tree b.b_term ])

let func_kind_label = function
  | Host -> "ir-function"
  | Device -> "ir-device-function"
  | RuntimeStub -> "ir-stub-function"

let func_tree f =
  Tree.node
    (Label.v (func_kind_label f.fn_kind))
    (List.map (fun ty -> Tree.leaf (Label.v ("ir-param." ^ ty_name ty))) f.fn_params
    @ List.map block_tree f.fn_blocks)

let to_tree m =
  Tree.node
    (Label.v ~loc:(Sv_util.Loc.make ~file:m.m_file ~line:1 ~col:0) "ir-module")
    (List.map
       (fun g ->
         Tree.leaf
           (Label.v
              (if g.g_const then "ir-const-global." ^ ty_name g.g_ty
               else "ir-global." ^ ty_name g.g_ty)))
       m.m_globals
    @ List.map func_tree m.m_funcs)

(* --- validation ------------------------------------------------------ *)

let instr_result = function
  | Bin (r, _, _, _, _)
  | Cmp (r, _, _, _, _)
  | Load (r, _, _)
  | Alloca (r, _)
  | Gep (r, _, _)
  | CastI (r, _, _, _)
  | Select (r, _, _, _) -> Some r
  | CallI (r, _, _, _) -> r
  | Store _ -> None

let instr_operands = function
  | Bin (_, _, _, a, b) | Cmp (_, _, _, a, b) | Gep (_, a, b) -> [ a; b ]
  | Load (_, _, p) -> [ p ]
  | Store (_, v, p) -> [ v; p ]
  | Alloca _ -> []
  | CallI (_, _, callee, args) -> callee :: args
  | CastI (_, _, _, v) -> [ v ]
  | Select (_, c, a, b) -> [ c; a; b ]

let validate m =
  let ( let* ) = Result.bind in
  let check_func f =
    if f.fn_blocks = [] && f.fn_linkage = Internal then
      Error (Printf.sprintf "%s: internal function with no body" f.fn_name)
    else begin
      let ids = List.map (fun b -> b.b_id) f.fn_blocks in
      let sorted = List.sort_uniq compare ids in
      if List.length sorted <> List.length ids then
        Error (Printf.sprintf "%s: duplicate block ids" f.fn_name)
      else begin
        let exists id = List.mem id ids in
        let check_term = function
          | Br t when not (exists t) -> Error "branch to missing block"
          | CondBr (_, a, b) when not (exists a && exists b) ->
              Error "conditional branch to missing block"
          | _ -> Ok ()
        in
        (* Parameters occupy registers 0 .. n-1 by the lowering convention. *)
        let defined = Hashtbl.create 64 in
        List.iteri (fun i _ -> Hashtbl.replace defined i ()) f.fn_params;
        let check_value v =
          match v with
          | Reg r ->
              if Hashtbl.mem defined r then Ok ()
              else Error (Printf.sprintf "%s: use of undefined register %%%d" f.fn_name r)
          | _ -> Ok ()
        in
        List.fold_left
          (fun acc b ->
            let* () = acc in
            let* () =
              List.fold_left
                (fun acc ins ->
                  let* () = acc in
                  let* () =
                    List.fold_left
                      (fun acc v ->
                        let* () = acc in
                        check_value v)
                      (Ok ()) (instr_operands ins.i)
                  in
                  (match instr_result ins.i with
                  | Some r -> Hashtbl.replace defined r ()
                  | None -> ());
                  Ok ())
                (Ok ()) b.b_instrs
            in
            check_term b.b_term)
          (Ok ()) f.fn_blocks
      end
    end
  in
  List.fold_left
    (fun acc f ->
      let* () = acc in
      check_func f)
    (Ok ()) m.m_funcs

(* --- pretty printing ------------------------------------------------- *)

let pp_value fmt = function
  | Reg r -> Format.fprintf fmt "%%%d" r
  | ImmI n -> Format.fprintf fmt "%d" n
  | ImmF f -> Format.fprintf fmt "%g" f
  | Glob g -> Format.fprintf fmt "@%s" g
  | Undef -> Format.fprintf fmt "undef"

let pp_instr fmt ins =
  let pv = pp_value in
  match ins.i with
  | Bin (r, op, ty, a, b) ->
      Format.fprintf fmt "%%%d = %s %s %a, %a" r op (ty_name ty) pv a pv b
  | Cmp (r, pred, ty, a, b) ->
      Format.fprintf fmt "%%%d = cmp %s %s %a, %a" r pred (ty_name ty) pv a pv b
  | Load (r, ty, p) -> Format.fprintf fmt "%%%d = load %s, %a" r (ty_name ty) pv p
  | Store (ty, v, p) -> Format.fprintf fmt "store %s %a, %a" (ty_name ty) pv v pv p
  | Alloca (r, ty) -> Format.fprintf fmt "%%%d = alloca %s" r (ty_name ty)
  | Gep (r, base, idx) -> Format.fprintf fmt "%%%d = gep %a, %a" r pv base pv idx
  | CallI (r, ty, callee, args) ->
      (match r with
      | Some r -> Format.fprintf fmt "%%%d = call %s %a(" r (ty_name ty) pv callee
      | None -> Format.fprintf fmt "call %s %a(" (ty_name ty) pv callee);
      List.iteri
        (fun k a ->
          if k > 0 then Format.fprintf fmt ", ";
          pv fmt a)
        args;
      Format.fprintf fmt ")"
  | CastI (r, op, ty, v) -> Format.fprintf fmt "%%%d = %s %s %a" r op (ty_name ty) pv v
  | Select (r, c, a, b) -> Format.fprintf fmt "%%%d = select %a, %a, %a" r pv c pv a pv b

let pp_term fmt = function
  | Ret None -> Format.fprintf fmt "ret void"
  | Ret (Some (ty, v)) -> Format.fprintf fmt "ret %s %a" (ty_name ty) pp_value v
  | Br t -> Format.fprintf fmt "br bb%d" t
  | CondBr (c, a, b) -> Format.fprintf fmt "condbr %a, bb%d, bb%d" pp_value c a b
  | Unreachable -> Format.fprintf fmt "unreachable"

let pp fmt m =
  Format.fprintf fmt "; module %s@\n" m.m_file;
  List.iter
    (fun g -> Format.fprintf fmt "@%s = global %s@\n" g.g_name (ty_name g.g_ty))
    m.m_globals;
  List.iter
    (fun f ->
      let kind =
        match f.fn_kind with Host -> "" | Device -> " device" | RuntimeStub -> " stub"
      in
      Format.fprintf fmt "define%s %s @%s(%s) {@\n" kind (ty_name f.fn_ret) f.fn_name
        (String.concat ", " (List.map ty_name f.fn_params));
      List.iter
        (fun b ->
          Format.fprintf fmt "bb%d:@\n" b.b_id;
          List.iter (fun i -> Format.fprintf fmt "  %a@\n" pp_instr i) b.b_instrs;
          Format.fprintf fmt "  %a@\n" pp_term b.b_term)
        f.fn_blocks;
      Format.fprintf fmt "}@\n")
    m.m_funcs
