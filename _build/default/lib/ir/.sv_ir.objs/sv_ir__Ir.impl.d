lib/ir/ir.ml: Format Hashtbl List Printf Result String Sv_tree Sv_util
