lib/ir/ir.mli: Format Result Sv_tree Sv_util
