type kind = CPU | GPU

type t = {
  abbr : string;
  name : string;
  vendor : string;
  kind : kind;
  topology : string;
  peak_bw_gbs : float;
  peak_gflops : float;
}

(* Peak numbers are first-order public figures for each part (per socket /
   per GPU): STREAM-class attainable bandwidth and FP64 vector peak. *)
let spr =
  { abbr = "SPR"; name = "Xeon Platinum 8468"; vendor = "Intel"; kind = CPU;
    topology = "8 nodes (32C*2)"; peak_bw_gbs = 280.0; peak_gflops = 2600.0 }

let milan =
  { abbr = "Milan"; name = "EPYC 7713"; vendor = "AMD"; kind = CPU;
    topology = "8 nodes (64C*2)"; peak_bw_gbs = 190.0; peak_gflops = 2000.0 }

let g3e =
  { abbr = "G3e"; name = "Graviton 3e"; vendor = "AWS"; kind = CPU;
    topology = "8 nodes (64C*1)"; peak_bw_gbs = 300.0; peak_gflops = 1800.0 }

let h100 =
  { abbr = "H100"; name = "Tesla H100 (SXM 80GB)"; vendor = "NVIDIA"; kind = GPU;
    topology = "2 nodes (4 GPUs)"; peak_bw_gbs = 3350.0; peak_gflops = 34000.0 }

let mi250x =
  { abbr = "MI250X"; name = "Instinct MI250X"; vendor = "AMD"; kind = GPU;
    topology = "2 nodes (4 GPUs)"; peak_bw_gbs = 3200.0; peak_gflops = 24000.0 }

let pvc =
  { abbr = "PVC"; name = "Data Center GPU Max 1550"; vendor = "Intel"; kind = GPU;
    topology = "1 node (4 GPUs*)"; peak_bw_gbs = 2800.0; peak_gflops = 22000.0 }

let all = [ spr; milan; g3e; h100; mi250x; pvc ]

let find abbr =
  let a = String.lowercase_ascii abbr in
  List.find_opt (fun p -> String.lowercase_ascii p.abbr = a) all
