(** The architectural-efficiency model behind the simulated benchmarks.

    Each (model, platform) pair gets an efficiency factor in (0, 1] — the
    fraction of the platform's roofline the model's best compiler attains
    — or no entry at all when the model cannot target the platform. The
    factors encode well-documented qualitative facts (first-party models
    peak on their own hardware; OpenMP leads on CPUs; SYCL leads on PVC;
    TBB/host-OpenMP cannot offload; CUDA cannot leave NVIDIA; StdPar needs
    nvhpc/TBB backends), modulated per application boundedness and a small
    deterministic jitter standing in for run-to-run variation.

    "Where more than one compiler exists for each model, we compile with
    each and only use the best performing result" (§VI) — the factor is
    that best-compiler result. *)

val base : Pmodel.t -> Platform.t -> float option
(** [base model platform] is the raw efficiency factor before app
    modulation; [None] when unsupported. *)

val efficiency : app:Pmodel.app -> Pmodel.t -> Platform.t -> float option
(** [efficiency ~app model platform] is the architectural efficiency for
    the given workload: the base factor, shifted by the app's bound
    (compute-bound workloads flatter first-party models slightly less on
    bandwidth-starved parts), plus a ±2% jitter seeded from the triple so
    repeated calls agree. *)

val runtime_s : app:Pmodel.app -> Pmodel.t -> Platform.t -> float option
(** [runtime_s ~app model platform] is the simulated wall time of the
    paper's deck (§VI) under the roofline: data-movement (or flop) volume
    divided by attained bandwidth (or throughput). [None] when
    unsupported. *)
