(** Cascade plots (Sewall et al., "Interpreting and visualizing
    performance portability metrics").

    A cascade orders each model's platforms from most to least efficient
    and tracks Φ as platforms accumulate: the curve starts at the model's
    best efficiency and decays; it crashes to 0 at the first unsupported
    platform. Figs. 11–12 of the paper are cascades over the six Table III
    platforms. *)

type series = {
  model : Pmodel.t;
  ordered : (string * float option) list;
      (** platform abbreviations with app efficiency, in this model's
          cascade order (supported platforms by descending efficiency,
          then unsupported ones) *)
  phi_series : float list;
      (** Φ after adding the k-th platform, k = 1..N *)
  final_phi : float;  (** Φ over the full platform set *)
}

val cascade :
  app:Pmodel.app ->
  models:Pmodel.t list ->
  platforms:Platform.t list ->
  series list
(** One series per model, in [models] order. *)
