(** Programming models and benchmarked applications.

    Names the models the evaluation covers (Table II) and the runtime
    characteristics of the mini-apps (memory-bandwidth-bound vs
    compute-bound), which the efficiency model uses. *)

type t = {
  id : string;    (** stable key, e.g. ["sycl-usm"] *)
  name : string;  (** display name, e.g. ["SYCL (USM)"] *)
}

val serial : t
val omp : t
val omp_target : t
val cuda : t
val hip : t
val sycl_usm : t
val sycl_acc : t
val kokkos : t
val tbb : t
val stdpar : t

val all_parallel : t list
(** The nine parallel C++ models, in the evaluation's display order
    (serial is the divergence baseline, not a Φ subject). *)

val find : string -> t option
(** Lookup by [id]. *)

type bound = MemoryBW | Compute

type app = {
  app_id : string;
  app_name : string;
  bound : bound;
  bytes_per_cell : float;  (** data movement per grid cell per iteration *)
  flops_per_cell : float;
  cells : float;           (** problem size (BM deck scale) *)
  iterations : int;
}

val tealeaf : app
(** TeaLeaf BM5-like deck: 4 CG steps over 4 MPI ranks (§VI). *)

val cloverleaf : app
(** CloverLeaf BM64-like deck: 300 iterations over 4 MPI ranks (§VI). *)

val minibude : app
(** miniBUDE: compute-bound docking workload. *)

val babelstream : app
(** BabelStream: pure streaming kernels. *)
