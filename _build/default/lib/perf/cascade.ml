type series = {
  model : Pmodel.t;
  ordered : (string * float option) list;
  phi_series : float list;
  final_phi : float;
}

let cascade ~app ~models ~platforms =
  List.map
    (fun (m : Pmodel.t) ->
      let effs =
        List.map
          (fun (p : Platform.t) ->
            (p.Platform.abbr, Phi.app_efficiency ~app ~models m p))
          platforms
      in
      (* supported first, by descending efficiency; unsupported last,
         alphabetical for determinism *)
      let supported, unsupported =
        List.partition (fun (_, e) -> e <> None) effs
      in
      let supported =
        List.sort
          (fun (_, a) (_, b) ->
            compare (Option.value ~default:0.0 b) (Option.value ~default:0.0 a))
          supported
      in
      let unsupported = List.sort (fun (a, _) (b, _) -> compare a b) unsupported in
      let ordered = supported @ unsupported in
      let phi_series =
        List.mapi
          (fun k _ ->
            let prefix = List.filteri (fun i _ -> i <= k) ordered in
            Phi.phi (List.map snd prefix))
          ordered
      in
      {
        model = m;
        ordered;
        phi_series;
        final_phi = Phi.phi (List.map snd effs);
      })
    models
