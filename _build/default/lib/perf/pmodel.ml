type t = { id : string; name : string }

let serial = { id = "serial"; name = "Serial" }
let omp = { id = "omp"; name = "OpenMP" }
let omp_target = { id = "omp-target"; name = "OpenMP target" }
let cuda = { id = "cuda"; name = "CUDA" }
let hip = { id = "hip"; name = "HIP" }
let sycl_usm = { id = "sycl-usm"; name = "SYCL (USM)" }
let sycl_acc = { id = "sycl-acc"; name = "SYCL (Accessors)" }
let kokkos = { id = "kokkos"; name = "Kokkos" }
let tbb = { id = "tbb"; name = "TBB" }
let stdpar = { id = "stdpar"; name = "StdPar" }

let all_parallel =
  [ omp; omp_target; cuda; hip; sycl_usm; sycl_acc; kokkos; tbb; stdpar ]

let find id =
  List.find_opt (fun m -> m.id = id) (serial :: all_parallel)

type bound = MemoryBW | Compute

type app = {
  app_id : string;
  app_name : string;
  bound : bound;
  bytes_per_cell : float;
  flops_per_cell : float;
  cells : float;
  iterations : int;
}

let tealeaf =
  { app_id = "tealeaf"; app_name = "TeaLeaf"; bound = MemoryBW;
    bytes_per_cell = 120.0; flops_per_cell = 14.0; cells = 16.0e6; iterations = 4 }

let cloverleaf =
  { app_id = "cloverleaf"; app_name = "CloverLeaf"; bound = MemoryBW;
    bytes_per_cell = 440.0; flops_per_cell = 60.0; cells = 36.0e6; iterations = 300 }

let minibude =
  { app_id = "minibude"; app_name = "miniBUDE"; bound = Compute;
    bytes_per_cell = 4.0; flops_per_cell = 460.0; cells = 65536.0 *. 938.0; iterations = 8 }

let babelstream =
  { app_id = "babelstream"; app_name = "BabelStream"; bound = MemoryBW;
    bytes_per_cell = 24.0; flops_per_cell = 2.0; cells = 2.0 ** 25.0; iterations = 100 }
