let phi effs =
  if effs = [] then 0.0
  else if List.exists (function None -> true | Some e -> e <= 0.0) effs then 0.0
  else
    let n = float_of_int (List.length effs) in
    let inv_sum =
      List.fold_left
        (fun acc e -> match e with Some e -> acc +. (1.0 /. e) | None -> acc)
        0.0 effs
    in
    n /. inv_sum

let perf ~app m p =
  match Efficiency.runtime_s ~app m p with
  | None -> None
  | Some t -> Some (1.0 /. t)

let best_perf ~app ~models p =
  List.fold_left
    (fun acc m ->
      match perf ~app m p with
      | Some v -> Float.max acc v
      | None -> acc)
    0.0 models

let app_efficiency ~app ~models m p =
  match perf ~app m p with
  | None -> None
  | Some v ->
      let best = best_perf ~app ~models p in
      if best <= 0.0 then None else Some (v /. best)

let table ~app ~models ~platforms =
  List.map
    (fun (m : Pmodel.t) ->
      ( m.Pmodel.id,
        List.map
          (fun (p : Platform.t) -> (p.Platform.abbr, app_efficiency ~app ~models m p))
          platforms ))
    models

let phi_of_model ~app ~models ~platforms m =
  phi (List.map (fun p -> app_efficiency ~app ~models m p) platforms)
