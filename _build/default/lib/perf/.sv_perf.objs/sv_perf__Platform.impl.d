lib/perf/platform.ml: List String
