lib/perf/pmodel.mli:
