lib/perf/cascade.ml: List Option Phi Platform Pmodel
