lib/perf/phi.ml: Efficiency Float List Platform Pmodel
