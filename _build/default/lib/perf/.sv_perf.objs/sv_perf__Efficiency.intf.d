lib/perf/efficiency.mli: Platform Pmodel
