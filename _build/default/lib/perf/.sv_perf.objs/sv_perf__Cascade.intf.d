lib/perf/cascade.mli: Platform Pmodel
