lib/perf/platform.mli:
