lib/perf/phi.mli: Platform Pmodel
