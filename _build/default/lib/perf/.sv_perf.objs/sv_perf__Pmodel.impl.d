lib/perf/pmodel.ml: List
