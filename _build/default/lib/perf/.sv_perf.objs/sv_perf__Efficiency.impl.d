lib/perf/efficiency.ml: Float Hashtbl Platform Pmodel Sv_util
