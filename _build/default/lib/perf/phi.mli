(** The performance-portability metric Φ (Pennycook, Sewall & Lee).

    Φ(a, p, H) is the harmonic mean of an application's efficiency on
    every platform in H, and 0 if any platform is unsupported. The paper
    pairs Φ with TBMD in its navigation charts (§VI). Efficiency here is
    {e application efficiency}: performance relative to the best observed
    performance by any model on that platform. *)

val phi : float option list -> float
(** [phi effs] — harmonic mean over the set; [0.0] if the list is empty,
    contains [None], or contains a non-positive efficiency. *)

val app_efficiency :
  app:Pmodel.app ->
  models:Pmodel.t list ->
  Pmodel.t ->
  Platform.t ->
  float option
(** [app_efficiency ~app ~models m p] is model [m]'s performance on [p]
    divided by the best performance any model in [models] achieves on
    [p] (1.0 for the per-platform winner). [None] when [m] does not run
    there. *)

val table :
  app:Pmodel.app ->
  models:Pmodel.t list ->
  platforms:Platform.t list ->
  (string * (string * float option) list) list
(** [table ~app ~models ~platforms] tabulates {!app_efficiency} — rows are
    model ids, columns platform abbreviations. *)

val phi_of_model :
  app:Pmodel.app ->
  models:Pmodel.t list ->
  platforms:Platform.t list ->
  Pmodel.t ->
  float
(** Φ of one model over the full platform set (0 when any platform is
    unsupported — the bar chart value of Figs. 11–12). *)
