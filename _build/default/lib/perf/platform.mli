(** The benchmark platforms of Table III.

    The paper measured Φ on six systems (three CPUs, three GPUs). The
    container has none of them, so this module models each platform's
    first-order performance envelope — peak memory bandwidth and peak
    FP64 throughput per unit — which, combined with the per-model
    efficiency model in {!Efficiency}, reproduces the *shape* of the
    paper's cascade plots (who runs where, roughly how well), not its
    absolute numbers. *)

type kind = CPU | GPU

type t = {
  abbr : string;        (** short label used in plots, e.g. ["SPR"] *)
  name : string;        (** marketing name, e.g. ["Xeon Platinum 8468"] *)
  vendor : string;
  kind : kind;
  topology : string;    (** Table III's topology column *)
  peak_bw_gbs : float;  (** attainable memory bandwidth, GB/s per unit *)
  peak_gflops : float;  (** FP64 peak, GFLOP/s per unit *)
}

val spr : t
val milan : t
val g3e : t
val h100 : t
val mi250x : t
val pvc : t

val all : t list
(** Table III order: SPR, Milan, G3e, H100, MI250X, PVC. *)

val find : string -> t option
(** Lookup by abbreviation (case-insensitive). *)
