module P = Platform
module M = Pmodel

(* Raw efficiency of a model's best toolchain on a platform, [None] when
   the model cannot target it at all. *)
let base (m : M.t) (p : P.t) =
  let cpu = p.P.kind = P.CPU in
  match (m.M.id, p.P.abbr) with
  (* host-only models *)
  | "serial", _ -> if cpu then Some 0.07 else None
  | "omp", _ -> if cpu then Some 0.95 else None
  | "tbb", _ -> if cpu then Some 0.90 else None
  | "stdpar", "H100" -> Some 0.86 (* nvhpc *)
  | "stdpar", "MI250X" -> Some 0.55 (* roc-stdpar, early *)
  | "stdpar", _ -> if cpu then Some 0.80 (* TBB backend *) else None
  (* first-party GPU models *)
  | "cuda", "H100" -> Some 1.00
  | "cuda", _ -> None
  | "hip", "MI250X" -> Some 1.00
  | "hip", "H100" -> Some 0.90
  | "hip", _ -> None
  (* portable offload models *)
  | "omp-target", abbr -> (
      match abbr with
      | "H100" -> Some 0.82
      | "MI250X" -> Some 0.76
      | "PVC" -> Some 0.80
      | _ -> Some 0.55 (* host fallback of the target region *))
  | "sycl-usm", abbr -> (
      match abbr with
      | "H100" -> Some 0.84
      | "MI250X" -> Some 0.78
      | "PVC" -> Some 0.95
      | _ -> Some 0.65 (* oneAPI CPU device *))
  | "sycl-acc", abbr -> (
      match abbr with
      | "H100" -> Some 0.86
      | "MI250X" -> Some 0.80
      | "PVC" -> Some 1.00
      | _ -> Some 0.60)
  | "kokkos", abbr -> (
      match abbr with
      | "H100" -> Some 0.92
      | "MI250X" -> Some 0.90
      | "PVC" -> Some 0.84 (* SYCL backend *)
      | _ -> Some 0.88)
  | _ -> None

let jitter ~app (m : M.t) (p : P.t) =
  let seed = Hashtbl.hash (app, m.M.id, p.P.abbr) land 0xFFFF in
  let prng = Sv_util.Prng.create seed in
  1.0 +. ((Sv_util.Prng.float prng 1.0 -. 0.5) *. 0.04)

let efficiency ~app (m : M.t) (p : P.t) =
  match base m p with
  | None -> None
  | Some e ->
      (* Compute-bound workloads are less sensitive to runtime data-motion
         quality, so portable models close some of the gap; memory-bound
         ones amplify first-party advantages slightly. *)
      let shaped =
        match app.M.bound with
        | M.Compute ->
            if e >= 0.99 then e else Float.min 0.98 (e +. ((1.0 -. e) *. 0.2))
        | M.MemoryBW -> e
      in
      let v = shaped *. jitter ~app:app.M.app_id m p in
      Some (Float.max 0.01 (Float.min 1.0 v))

let runtime_s ~app m p =
  match efficiency ~app m p with
  | None -> None
  | Some e ->
      let volume_bytes = app.M.bytes_per_cell *. app.M.cells *. float_of_int app.M.iterations in
      let volume_flops = app.M.flops_per_cell *. app.M.cells *. float_of_int app.M.iterations in
      let t_bw = volume_bytes /. (e *. p.P.peak_bw_gbs *. 1e9) in
      let t_fl = volume_flops /. (e *. p.P.peak_gflops *. 1e9) in
      Some (Float.max t_bw t_fl)
