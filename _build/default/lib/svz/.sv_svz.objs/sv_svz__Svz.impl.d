lib/svz/svz.ml: Array Buffer Char String
