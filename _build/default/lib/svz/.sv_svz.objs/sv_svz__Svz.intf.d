lib/svz/svz.mli:
