exception Corrupt of string

let magic = "SVZ1"
let min_match = 4
let max_match = 0x7F + min_match
let max_dist = 0xFFFF

let add_varint b n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let byte = !n land 0x7F in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char b (Char.chr byte);
      continue := false
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

let read_varint s pos =
  let v = ref 0 and shift = ref 0 and pos = ref pos and fin = ref false in
  while not !fin do
    if !pos >= String.length s then raise (Corrupt "truncated varint");
    let byte = Char.code s.[!pos] in
    incr pos;
    v := !v lor ((byte land 0x7F) lsl !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then fin := true
  done;
  (!v, !pos)

let hash4 s i =
  let b k = Char.code s.[i + k] in
  (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)) * 2654435761
  land 0xFFFFF

let compress s =
  let n = String.length s in
  let out = Buffer.create (n / 2 + 16) in
  Buffer.add_string out magic;
  add_varint out n;
  let table = Array.make 0x100000 (-1) in
  let lit_start = ref 0 in
  let flush_literals upto =
    (* Emit pending literals in runs of at most 128. *)
    let i = ref !lit_start in
    while !i < upto do
      let len = min 128 (upto - !i) in
      Buffer.add_char out (Char.chr (len - 1));
      Buffer.add_substring out s !i len;
      i := !i + len
    done;
    lit_start := upto
  in
  let i = ref 0 in
  while !i < n do
    if !i + min_match <= n then begin
      let h = hash4 s !i in
      let cand = table.(h) in
      table.(h) <- !i;
      let ok =
        cand >= 0
        && !i - cand <= max_dist
        && String.sub s cand min_match = String.sub s !i min_match
      in
      if ok then begin
        (* Extend the match as far as allowed. *)
        let len = ref min_match in
        while
          !len < max_match && !i + !len < n && s.[cand + !len] = s.[!i + !len]
        do
          incr len
        done;
        flush_literals !i;
        let dist = !i - cand in
        Buffer.add_char out (Char.chr (0x80 lor (!len - min_match)));
        Buffer.add_char out (Char.chr (dist lsr 8));
        Buffer.add_char out (Char.chr (dist land 0xFF));
        (* Index the skipped positions sparsely (every other byte) to keep
           compression fast on long repeats. *)
        let stop = min (!i + !len) (n - min_match) in
        let j = ref (!i + 1) in
        while !j < stop do
          table.(hash4 s !j) <- !j;
          j := !j + 2
        done;
        i := !i + !len;
        lit_start := !i
      end
      else incr i
    end
    else incr i
  done;
  flush_literals n;
  Buffer.contents out

let decompress s =
  let len_magic = String.length magic in
  if String.length s < len_magic || String.sub s 0 len_magic <> magic then
    raise (Corrupt "bad magic");
  let orig_len, pos = read_varint s len_magic in
  let out = Buffer.create orig_len in
  let pos = ref pos in
  let n = String.length s in
  while !pos < n do
    let tag = Char.code s.[!pos] in
    incr pos;
    if tag land 0x80 = 0 then begin
      let len = tag + 1 in
      if !pos + len > n then raise (Corrupt "truncated literal run");
      Buffer.add_substring out s !pos len;
      pos := !pos + len
    end
    else begin
      if !pos + 2 > n then raise (Corrupt "truncated match");
      let len = (tag land 0x7F) + min_match in
      let dist = (Char.code s.[!pos] lsl 8) lor Char.code s.[!pos + 1] in
      pos := !pos + 2;
      let here = Buffer.length out in
      if dist = 0 || dist > here then raise (Corrupt "invalid distance");
      (* Overlapping copies are valid (RLE-style), so copy byte by byte. *)
      for k = 0 to len - 1 do
        Buffer.add_char out (Buffer.nth out (here - dist + k))
      done
    end
  done;
  let result = Buffer.contents out in
  if String.length result <> orig_len then raise (Corrupt "length mismatch");
  result

let ratio s =
  if String.length s = 0 then 1.0
  else float_of_int (String.length (compress s)) /. float_of_int (String.length s)
