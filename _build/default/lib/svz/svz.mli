(** Byte-stream compression for the Codebase DB.

    The paper stores its Codebase DB as "Zstd compressed MessagePack"
    (§IV). Zstd is not available in this sealed environment, so this module
    provides an LZ77/LZSS-style compressor with the same role: fast,
    lossless, effective on the highly repetitive MessagePack tree dumps
    (tree node kinds repeat constantly).

    Format ["SVZ1"]: a 4-byte magic, a varint original length, then a
    token stream. Token high bit clear → literal run of [b + 1] bytes;
    high bit set → back-reference of length [(b land 0x7F) + min_match]
    with a 16-bit big-endian distance (1–65535) into the already-decoded
    output. *)

val compress : string -> string
(** [compress s] never fails; worst case the output is a fraction larger
    than the input (pure literal runs plus header). *)

exception Corrupt of string
(** Raised by {!decompress} on malformed input. *)

val decompress : string -> string
(** [decompress (compress s) = s] for all [s]. Raises {!Corrupt} when the
    magic, lengths, or back-references are inconsistent. *)

val ratio : string -> float
(** [ratio s] is [compressed length / original length] (1.0 for the empty
    string); used by the Codebase DB stats report. *)
