(** The Tree-Based Model Divergence metric (§III-C) over indexed
    codebases.

    Implements Eq. (2)–(7): absolute counts (SLOC/LLOC) summed across
    units; relative measures ([Source] via O(NP) edit distance, the tree
    metrics via TED) summed over matched unit pairs, normalised by the
    maximum divergence [dmax] (the target codebase's size), clamped to
    [0, 1] like the paper's heatmaps.

    The [match] function of Eq. (4)/(6) pairs units positionally: every
    corpus port has the same unit structure, which is exactly the
    "units with the same purpose" pairing the paper requires. Comparing
    codebases of different languages is a programming error
    ([Invalid_argument]) — §IV-B: frontend trees are not comparable
    across compilers. *)

type metric = SLOC | LLOC | Source | TSrc | TSem | TSemI | TIr

type variant =
  | Base  (** as written *)
  | PP    (** after the preprocessor ([+preprocessor]) *)
  | Cov   (** coverage-masked ([+coverage]) *)

val all_metrics : metric list
(** Table I order. *)

val metric_label : metric -> string
(** e.g. ["T_sem+i"]. *)

val variant_label : variant -> string
(** [""], ["+pp"], ["+cov"]. *)

val metric_of_string : string -> metric option
(** Parse a CLI spelling (["sloc"], ["t_sem"], ["t_sem+i"], ...). *)

(** {2 Engine configuration}

    [matrix] computes each unordered codebase pair once. With
    [set_jobs n], n ≥ 2, those pairwise jobs fan out over a forked
    worker pool ({!Sv_sched.Sched}) with deterministic reassembly — the
    matrix is identical to a serial run. With a persistent TED cache
    installed ([set_ted_cache]), every pairwise tree comparison first
    consults the digest-keyed table; entries computed inside workers are
    shipped back and merged, so the parent's cache warms up even in
    parallel runs. *)

val set_jobs : int -> unit
(** Worker processes used by {!matrix} (clamped to ≥ 1; default 1 =
    serial, in-process). *)

val jobs : unit -> int

val set_ted_cache : Sv_db.Codebase_db.Ted_cache.cache option -> unit
(** Install (or remove, with [None]) the persistent TED memo consulted
    by every pairwise tree comparison. *)

val ted_cache : unit -> Sv_db.Codebase_db.Ted_cache.cache option

val clear_memo : unit -> unit
(** Drop the in-process divergence memo — for benchmarks and tests that
    must measure or observe cold recomputation. *)

val absolute : metric -> Pipeline.indexed -> int option
(** [absolute m ix] is the codebase-level value for absolute metrics
    (Eq. 2–3); [None] for relative metrics. *)

val raw_divergence :
  ?variant:variant -> metric -> Pipeline.indexed -> Pipeline.indexed -> int * int
(** [raw_divergence m c1 c2] is [(d, dmax)] summed over matched units.
    For SLOC/LLOC, [d] is the absolute difference of totals and [dmax]
    the target's total. *)

val divergence :
  ?variant:variant -> metric -> Pipeline.indexed -> Pipeline.indexed -> float
(** Normalised divergence in [0, 1]: [d / dmax] clamped (Figs. 7–8's cell
    value). Zero iff the codebases are metric-identical. *)

val matrix :
  ?variant:variant ->
  metric ->
  Pipeline.indexed list ->
  Sv_cluster.Cluster.matrix
(** Pairwise divergence over the cartesian product (Fig. 4's input),
    labelled with model display names. *)

val dendrogram :
  ?variant:variant ->
  ?linkage:Sv_cluster.Cluster.linkage ->
  metric ->
  Pipeline.indexed list ->
  Sv_cluster.Cluster.matrix * Sv_cluster.Cluster.dendro
(** The paper's clustering recipe: divergence matrix → Euclidean row
    distance → agglomerative clustering (complete linkage by default). *)
