type row = { target : string; values : (string * float) list }

let divergence_from ~base ~targets ~metrics =
  List.map
    (fun (t : Pipeline.indexed) ->
      {
        target = t.Pipeline.ix_model_name;
        values =
          List.map
            (fun (m, v) ->
              ( Tbmd.metric_label m ^ Tbmd.variant_label v,
                Tbmd.divergence ~variant:v m base t ))
            metrics;
      })
    targets

let cheapest ~metric rows =
  let label = Tbmd.metric_label metric in
  List.fold_left
    (fun best row ->
      match List.assoc_opt label row.values with
      | None -> best
      | Some v -> (
          match best with
          | Some (_, bv) when bv <= v -> best
          | _ -> Some (row.target, v)))
    None rows

let stepping_stone_gain ~base ~via ~target ~metric =
  let d a b = Tbmd.divergence metric a b in
  d base target -. (d base via +. d via target)
