(** Code-migration cost studies (§V-D, Figs. 9–10).

    Porting direction matters: the divergence from a serial baseline to an
    offload model differs from the divergence from an existing CUDA port,
    because CUDA already encodes platform-specific semantics. This module
    computes the per-target divergence tables for any base codebase. *)

type row = {
  target : string;  (** target model display name *)
  values : (string * float) list;
      (** (metric label, normalised divergence base→target) *)
}

val divergence_from :
  base:Pipeline.indexed ->
  targets:Pipeline.indexed list ->
  metrics:(Tbmd.metric * Tbmd.variant) list ->
  row list
(** [divergence_from ~base ~targets ~metrics] — one row per target, one
    column per metric; divergence is measured with the target as the
    normalisation side (Eq. 7: the codebase being ported {e to}). *)

val cheapest :
  metric:Tbmd.metric -> row list -> (string * float) option
(** The target with the lowest divergence under [metric] — §V-D's
    observation that OpenMP target is the cheapest offload port from
    serial. *)

val stepping_stone_gain :
  base:Pipeline.indexed ->
  via:Pipeline.indexed ->
  target:Pipeline.indexed ->
  metric:Tbmd.metric ->
  float
(** [stepping_stone_gain ~base ~via ~target ~metric] is
    [d(base→target) - (d(base→via) + d(via→target))]: positive when the
    paper's conjectured two-hop port (serial → declarative model →
    target) is cheaper than the direct port. *)
