lib/core/migration.ml: List Pipeline Tbmd
