lib/core/tbmd.mli: Pipeline Sv_cluster Sv_db
