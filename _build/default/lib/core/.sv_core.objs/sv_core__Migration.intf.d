lib/core/migration.mli: Pipeline Tbmd
