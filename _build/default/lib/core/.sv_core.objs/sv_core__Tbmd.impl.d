lib/core/tbmd.ml: Array Hashtbl List Pipeline Printf String Sv_cluster Sv_db Sv_metrics Sv_msgpack Sv_sched Sv_tree
