lib/core/tbmd.ml: Array Hashtbl List Pipeline Printf String Sv_cluster Sv_metrics Sv_tree
