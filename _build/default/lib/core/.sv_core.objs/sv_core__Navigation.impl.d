lib/core/navigation.ml: Char List Pipeline Printf String Sv_perf Sv_report Tbmd
