lib/core/navigation.mli: Pipeline Sv_perf
