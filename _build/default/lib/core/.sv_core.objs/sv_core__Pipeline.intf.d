lib/core/pipeline.mli: Sv_corpus Sv_db Sv_tree Sv_util
