lib/core/pipeline.mli: Hashtbl Sv_corpus Sv_db Sv_tree Sv_util
