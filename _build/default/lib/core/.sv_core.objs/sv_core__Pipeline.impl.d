lib/core/pipeline.ml: Hashtbl List Option Printf String Sv_corpus Sv_db Sv_interp Sv_ir Sv_lang_c Sv_lang_f Sv_metrics Sv_tree Sv_util
