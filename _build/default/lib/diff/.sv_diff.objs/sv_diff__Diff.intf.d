lib/diff/diff.mli:
