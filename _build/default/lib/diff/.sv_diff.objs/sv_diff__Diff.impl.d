lib/diff/diff.ml: Array Fun
