(** Sequence comparison.

    The paper's [Source] metric (Eq. 4) compares normalised source lines of
    matched unit pairs with the O(NP) sequence-comparison algorithm of Wu,
    Manber, Myers & Miller — the algorithm behind the Linux [diff] utility
    and the dtl library SilverVale integrates. We implement it directly,
    with the quadratic dynamic programs kept as test oracles. *)

val edit_distance : eq:('a -> 'a -> bool) -> 'a array -> 'a array -> int
(** [edit_distance ~eq a b] is the minimal number of insertions plus
    deletions turning [a] into [b] (no substitutions — the diff model).
    Computed with the Wu et al. O(NP) algorithm: O((min n m)·D) expected
    time, where D is the resulting distance. *)

val edit_distance_dp : eq:('a -> 'a -> bool) -> 'a array -> 'a array -> int
(** Quadratic dynamic-programming version of {!edit_distance}; the
    property-test oracle. *)

val lcs_length : eq:('a -> 'a -> bool) -> 'a array -> 'a array -> int
(** [lcs_length ~eq a b] is the length of the longest common subsequence;
    derived from {!edit_distance} via [lcs = (|a| + |b| - d) / 2]. *)

val levenshtein : eq:('a -> 'a -> bool) -> 'a array -> 'a array -> int
(** [levenshtein ~eq a b] allows substitutions at cost 1 as well; mentioned
    in §III as an alternative string-style measure. O(n·m) time, O(min)
    space. *)

type 'a op =
  | Keep of 'a      (** element common to both sequences *)
  | Delete of 'a    (** element only in the first sequence *)
  | Insert of 'a    (** element only in the second sequence *)

val script : eq:('a -> 'a -> bool) -> 'a array -> 'a array -> 'a op list
(** [script ~eq a b] is a minimal edit script (diff hunks flattened);
    the number of [Delete]s plus [Insert]s equals [edit_distance a b].
    Computed by the quadratic DP with traceback, so intended for
    modest inputs (unit tests, reports). *)
