(* Wu–Manber–Myers–Miller O(NP) sequence comparison ("An O(NP) Sequence
   Comparison Algorithm", IPL 1990). Convention: [short] has length n,
   [long] has length m >= n; diagonal k = y - x where y indexes [long] and
   x indexes [short]; [fp.(k)] is the furthest y reached on diagonal k.
   The distance is delta + 2p where delta = m - n and p is the number of
   iterations of the outer loop. *)
let edit_distance ~eq a b =
  let a, b = if Array.length a <= Array.length b then (a, b) else (b, a) in
  let n = Array.length a and m = Array.length b in
  if n = 0 then m
  else begin
    let delta = m - n in
    let offset = n + 1 in
    let fp = Array.make (n + m + 3) (-1) in
    let snake k y =
      let x = ref (y - k) and y = ref y in
      while !x < n && !y < m && eq a.(!x) b.(!y) do
        incr x;
        incr y
      done;
      !y
    in
    let p = ref (-1) in
    let finished () = fp.(delta + offset) = m in
    while not (finished ()) do
      incr p;
      for k = - !p to delta - 1 do
        fp.(k + offset) <- snake k (max (fp.(k - 1 + offset) + 1) fp.(k + 1 + offset))
      done;
      for k = delta + !p downto delta + 1 do
        fp.(k + offset) <- snake k (max (fp.(k - 1 + offset) + 1) fp.(k + 1 + offset))
      done;
      fp.(delta + offset) <-
        snake delta (max (fp.(delta - 1 + offset) + 1) fp.(delta + 1 + offset))
    done;
    delta + (2 * !p)
  end

let edit_distance_dp ~eq a b =
  let n = Array.length a and m = Array.length b in
  let prev = Array.init (m + 1) Fun.id in
  let cur = Array.make (m + 1) 0 in
  for i = 1 to n do
    cur.(0) <- i;
    for j = 1 to m do
      cur.(j) <-
        (if eq a.(i - 1) b.(j - 1) then prev.(j - 1)
         else 1 + min prev.(j) cur.(j - 1))
    done;
    Array.blit cur 0 prev 0 (m + 1)
  done;
  prev.(m)

let lcs_length ~eq a b =
  (Array.length a + Array.length b - edit_distance ~eq a b) / 2

let levenshtein ~eq a b =
  let n = Array.length a and m = Array.length b in
  let prev = Array.init (m + 1) Fun.id in
  let cur = Array.make (m + 1) 0 in
  for i = 1 to n do
    cur.(0) <- i;
    for j = 1 to m do
      let sub = prev.(j - 1) + if eq a.(i - 1) b.(j - 1) then 0 else 1 in
      cur.(j) <- min sub (1 + min prev.(j) cur.(j - 1))
    done;
    Array.blit cur 0 prev 0 (m + 1)
  done;
  prev.(m)

type 'a op = Keep of 'a | Delete of 'a | Insert of 'a

let script ~eq a b =
  let n = Array.length a and m = Array.length b in
  let d = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = 0 to n do
    d.(i).(0) <- i
  done;
  for j = 0 to m do
    d.(0).(j) <- j
  done;
  for i = 1 to n do
    for j = 1 to m do
      d.(i).(j) <-
        (if eq a.(i - 1) b.(j - 1) then d.(i - 1).(j - 1)
         else 1 + min d.(i - 1).(j) d.(i).(j - 1))
    done
  done;
  let rec back i j acc =
    if i = 0 && j = 0 then acc
    else if i > 0 && j > 0 && eq a.(i - 1) b.(j - 1) && d.(i).(j) = d.(i - 1).(j - 1)
    then back (i - 1) (j - 1) (Keep a.(i - 1) :: acc)
    else if i > 0 && d.(i).(j) = d.(i - 1).(j) + 1 then
      back (i - 1) j (Delete a.(i - 1) :: acc)
    else back i (j - 1) (Insert b.(j - 1) :: acc)
  in
  back n m []
