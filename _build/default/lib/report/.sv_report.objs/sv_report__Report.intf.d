lib/report/report.mli: Sv_cluster Sv_perf
