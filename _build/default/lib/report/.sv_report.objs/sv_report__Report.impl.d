lib/report/report.ml: Array Buffer Float List Option Printf String Sv_cluster Sv_perf Sv_util
