module Xstring = Sv_util.Xstring
module Cluster = Sv_cluster.Cluster

let table ~headers ~rows =
  let all = headers :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (Xstring.display_width cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let b = Buffer.create 1024 in
  let hline l m r =
    Buffer.add_string b l;
    List.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string b m;
        Buffer.add_string b (Xstring.repeat "─" (w + 2)))
      widths;
    Buffer.add_string b r;
    Buffer.add_char b '\n'
  in
  let row cells =
    Buffer.add_string b "│";
    List.iteri
      (fun i w ->
        let cell = Option.value ~default:"" (List.nth_opt cells i) in
        Buffer.add_char b ' ';
        Buffer.add_string b (Xstring.pad w cell);
        Buffer.add_string b " │")
      widths;
    Buffer.add_char b '\n'
  in
  hline "┌" "┬" "┐";
  row headers;
  hline "├" "┼" "┤";
  List.iter row rows;
  hline "└" "┴" "┘";
  Buffer.contents b

let shades = [| " "; "░"; "▒"; "▓"; "█" |]

let heatmap ?(lo = 0.0) ?(hi = 1.0) ~row_labels ~col_labels data =
  let cell v =
    if Float.is_nan v then "  --  "
    else begin
      let t = (v -. lo) /. (hi -. lo) in
      let t = Float.max 0.0 (Float.min 1.0 t) in
      let idx = min 4 (int_of_float (t *. 5.0)) in
      Printf.sprintf "%s%4.2f%s" shades.(idx) v shades.(idx)
    end
  in
  let rows =
    List.mapi
      (fun i label -> label :: List.mapi (fun j _ -> cell data.(i).(j)) col_labels)
      row_labels
  in
  table ~headers:("" :: col_labels) ~rows

let dendrogram ~labels d =
  (* Each subtree renders as lines whose anchor line begins with '─'. *)
  let rec go node =
    match node with
    | Cluster.Leaf i -> ([ "─ " ^ labels.(i) ], 0)
    | Cluster.Merge (a, b, h) ->
        let la, aa = go a and lb, ab = go b in
        let top =
          List.mapi
            (fun i l ->
              if i < aa then "  " ^ l
              else if i = aa then "┌" ^ l
              else "│ " ^ l)
            la
        in
        let junction = Printf.sprintf "┤ (%.3f)" h in
        let bottom =
          List.mapi
            (fun i l ->
              if i < ab then "│ " ^ l
              else if i = ab then "└" ^ l
              else "  " ^ l)
            lb
        in
        (top @ (junction :: bottom), List.length top)
  in
  let lines, _ = go d in
  String.concat "\n" lines ^ "\n"

let bars ?(width = 40) items =
  let vmax = List.fold_left (fun acc (_, v) -> Float.max acc v) 1e-12 items in
  let lw = List.fold_left (fun acc (l, _) -> max acc (Xstring.display_width l)) 0 items in
  let line (label, v) =
    let cells = int_of_float (Float.max 0.0 v /. vmax *. float_of_int width) in
    Printf.sprintf "%s │%s%s %.3f" (Xstring.pad lw label) (Xstring.repeat "█" cells)
      (Xstring.repeat "·" (width - cells))
      v
  in
  String.concat "\n" (List.map line items) ^ "\n"

let spark_chars = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

let sparkline vs =
  String.concat ""
    (List.map
       (fun v ->
         let t = Float.max 0.0 (Float.min 1.0 v) in
         spark_chars.(min 7 (int_of_float (t *. 8.0))))
       vs)

let cascade series =
  let b = Buffer.create 1024 in
  let rows =
    List.map
      (fun (s : Sv_perf.Cascade.series) ->
        let order =
          String.concat " "
            (List.map
               (fun (abbr, e) ->
                 match e with
                 | Some e -> Printf.sprintf "%s:%.2f" abbr e
                 | None -> Printf.sprintf "%s:--" abbr)
               s.Sv_perf.Cascade.ordered)
        in
        [
          s.Sv_perf.Cascade.model.Sv_perf.Pmodel.name;
          sparkline s.Sv_perf.Cascade.phi_series;
          Printf.sprintf "%.3f" s.Sv_perf.Cascade.final_phi;
          order;
        ])
      series
  in
  Buffer.add_string b
    (table ~headers:[ "model"; "cascade"; "Phi"; "platform order (app efficiency)" ] ~rows);
  Buffer.add_string b "final Phi over all platforms:\n";
  Buffer.add_string b
    (bars
       (List.map
          (fun (s : Sv_perf.Cascade.series) ->
            (s.Sv_perf.Cascade.model.Sv_perf.Pmodel.name, s.Sv_perf.Cascade.final_phi))
          series));
  Buffer.contents b

let scatter ?(width = 64) ?(height = 20) ~xlabel ~ylabel points =
  let grid = Array.make_matrix height width ' ' in
  List.iter
    (fun (x, y, c) ->
      let xi = int_of_float (Float.max 0.0 (Float.min 1.0 x) *. float_of_int (width - 1)) in
      let yi = int_of_float (Float.max 0.0 (Float.min 1.0 y) *. float_of_int (height - 1)) in
      let row = height - 1 - yi in
      if grid.(row).(xi) = ' ' then grid.(row).(xi) <- c)
    points;
  let b = Buffer.create 2048 in
  Buffer.add_string b (Printf.sprintf "%s ↑\n" ylabel);
  Array.iteri
    (fun i row ->
      let ytick =
        if i = 0 then "1.0" else if i = height - 1 then "0.0" else "   "
      in
      Buffer.add_string b (Printf.sprintf "%s │%s│\n" ytick (String.init width (Array.get row))))
    grid;
  Buffer.add_string b
    (Printf.sprintf "    └%s┘\n     0.0%s1.0 → %s\n" (Xstring.repeat "─" width)
       (Xstring.repeat " " (width - 6))
       xlabel);
  Buffer.contents b
