(** Terminal rendering for every figure and table the harness regenerates.

    The paper presents heatmaps (Figs. 4, 7, 8), clustered dendrograms
    (Figs. 4–6), bar/divergence charts (Figs. 9, 10), cascade plots
    (Figs. 11, 12) and navigation charts (Figs. 13–15). These renderers
    produce their textual equivalents — deterministic, diffable output for
    the bench harness and EXPERIMENTS.md. *)

val table : headers:string list -> rows:string list list -> string
(** Box-drawn table; columns autosize to the widest cell (Unicode-aware). *)

val heatmap :
  ?lo:float ->
  ?hi:float ->
  row_labels:string list ->
  col_labels:string list ->
  float array array ->
  string
(** Shade-block heatmap of values in [lo, hi] (default [0, 1]); each cell
    also prints its value to two decimals. NaN renders as [--]. *)

val dendrogram : labels:string array -> Sv_cluster.Cluster.dendro -> string
(** Left-growing text dendrogram with merge heights annotated. *)

val bars : ?width:int -> (string * float) list -> string
(** Horizontal bar chart scaled to the maximum value (default width 40
    cells). *)

val sparkline : float list -> string
(** One-character-per-value block sparkline of values in [0, 1]. *)

val cascade : Sv_perf.Cascade.series list -> string
(** Cascade plot rendering: per model, the platform order, the Φ series
    as a sparkline plus values, and the final Φ bar chart. *)

val scatter :
  ?width:int ->
  ?height:int ->
  xlabel:string ->
  ylabel:string ->
  (float * float * char) list ->
  string
(** Character-grid scatter plot of points in [0,1]×[0,1]; the [char] is
    the marker drawn. Collisions keep the earliest point. *)
