lib/jsonx/jsonx.ml: Buffer Char Float List Printf String
