lib/jsonx/jsonx.mli:
