lib/msgpack/msgpack.mli: Buffer Format
