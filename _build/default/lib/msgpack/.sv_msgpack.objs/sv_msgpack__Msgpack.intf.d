lib/msgpack/msgpack.mli: Format
