(* Tests for Sv_lang_f: lexer, parser, CST and T_sem for the Fortran-like
   mini-language. *)

module Token = Sv_lang_f.Token
module Parser = Sv_lang_f.Parser
module Ast = Sv_lang_f.Ast
module Cst = Sv_lang_f.Cst
module Sem = Sv_lang_f.Sem_tree
module Tree = Sv_tree.Tree
module Label = Sv_tree.Label

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let parse src = Parser.parse ~file:"t.f90" src

let wrap body =
  Printf.sprintf
    "program t\n  implicit none\n  integer :: i\n  real(kind=8), allocatable, dimension(:) :: a, b\n%s\nend program t\n"
    body

let body_of src =
  match (parse src).Ast.f_units with
  | [ u ] -> u.Ast.u_body
  | _ -> Alcotest.fail "expected one unit"

(* --- lexer --- *)

let test_lex_roundtrip () =
  let src = "program t\n  ! comment\n  x = 1.0d0 ** 2\nend program t\n" in
  checks "reconstruct" src (Cst.reconstruct (Token.lex ~file:"t" src))

let test_lex_kinds () =
  let kinds src =
    List.filter_map
      (fun (t : Token.t) ->
        match t.Token.kind with Token.Newline -> None | k -> Some k)
      (Token.significant (Token.lex ~file:"t" src))
  in
  checkb "keyword" true (kinds "do" = [ Token.Keyword ]);
  checkb "float d-exponent" true (kinds "1.0d0" = [ Token.FloatLit ]);
  checkb "float kind-suffix" true (kinds "4.0_8" = [ Token.FloatLit ]);
  checkb "dotted op" true (kinds ".and." = [ Token.Op ]);
  checkb "logical literal" true (kinds ".true." = [ Token.Op ]);
  checkb "power op" true (kinds "**" = [ Token.Op ]);
  checkb "not-equal" true (kinds "/=" = [ Token.Op ]);
  checkb "directive" true (kinds "!$omp parallel do" = [ Token.Directive ]);
  checkb "plain comment dropped" true (kinds "! note" = [])

(* --- parser --- *)

let test_parse_program_shape () =
  let f = parse (wrap "  a = 1.0d0") in
  match f.Ast.f_units with
  | [ u ] ->
      checkb "program kind" true (u.Ast.u_kind = Ast.Program);
      checks "name" "t" u.Ast.u_name;
      checki "decl groups" 2 (List.length u.Ast.u_decls)
  | _ -> Alcotest.fail "expected one unit"

let test_parse_subroutine () =
  let src =
    "subroutine scale(x, n)\n  integer, intent(in) :: n\n  real(kind=8), intent(inout), dimension(:) :: x\n  x = 2.0d0 * x\nend subroutine scale\n"
  in
  match (parse src).Ast.f_units with
  | [ u ] -> (
      match u.Ast.u_kind with
      | Ast.Subroutine args -> Alcotest.(check (list string)) "args" [ "x"; "n" ] args
      | _ -> Alcotest.fail "expected subroutine")
  | _ -> Alcotest.fail "expected one unit"

let test_parse_do_variants () =
  (match body_of (wrap "  do i = 1, 10\n    a(i) = 0.0d0\n  end do") with
  | [ { s = Ast.FDo ("i", _, _, None, [ _ ]); _ } ] -> ()
  | _ -> Alcotest.fail "counted do");
  (match body_of (wrap "  do i = 1, 10, 2\n    a(i) = 0.0d0\n  end do") with
  | [ { s = Ast.FDo (_, _, _, Some _, _); _ } ] -> ()
  | _ -> Alcotest.fail "strided do");
  (match body_of (wrap "  do concurrent (i = 1:10)\n    a(i) = 0.0d0\n  end do") with
  | [ { s = Ast.FDoConcurrent ("i", _, _, _); _ } ] -> ()
  | _ -> Alcotest.fail "do concurrent");
  match body_of (wrap "  do while (i < 10)\n    i = i + 1\n  end do") with
  | [ { s = Ast.FDoWhile (_, _); _ } ] -> ()
  | _ -> Alcotest.fail "do while"

let test_parse_if_forms () =
  (match body_of (wrap "  if (i > 0) then\n    a(i) = 1.0d0\n  else\n    a(i) = 2.0d0\n  end if") with
  | [ { s = Ast.FIf (_, [ _ ], [ _ ]); _ } ] -> ()
  | _ -> Alcotest.fail "block if");
  match body_of (wrap "  if (i > 0) a(i) = 1.0d0") with
  | [ { s = Ast.FIf (_, [ _ ], []); _ } ] -> ()
  | _ -> Alcotest.fail "one-line if"

let test_parse_array_forms () =
  (match body_of (wrap "  a(:) = 0.1d0") with
  | [ { s = Ast.FAssign ({ e = Ast.FRef ("a", [ Ast.ARange (None, None) ]); _ }, _); _ } ] -> ()
  | _ -> Alcotest.fail "full slice");
  (match body_of (wrap "  a(2:5) = b(2:5)") with
  | [ { s = Ast.FAssign ({ e = Ast.FRef ("a", [ Ast.ARange (Some _, Some _) ]); _ }, _); _ } ]
    -> ()
  | _ -> Alcotest.fail "bounded slice");
  match body_of (wrap "  a = b + 1.0d0") with
  | [ { s = Ast.FAssign ({ e = Ast.FVar "a"; _ }, { e = Ast.FBin ("+", _, _); _ }); _ } ] -> ()
  | _ -> Alcotest.fail "whole-array assign"

let test_parse_alloc () =
  (match body_of (wrap "  allocate(a(100), b(100))") with
  | [ { s = Ast.FAllocate [ ("a", [ _ ]); ("b", [ _ ]) ]; _ } ] -> ()
  | _ -> Alcotest.fail "allocate");
  match body_of (wrap "  deallocate(a, b)") with
  | [ { s = Ast.FDeallocate [ "a"; "b" ]; _ } ] -> ()
  | _ -> Alcotest.fail "deallocate"

let test_parse_loop_directive () =
  match
    body_of
      (wrap "  !$omp parallel do\n  do i = 1, 10\n    a(i) = 0.0d0\n  end do\n  !$omp end parallel do")
  with
  | [ { s = Ast.FDirective (d, [ { s = Ast.FDo _; _ } ]); _ } ] ->
      checkb "origin omp" true (d.Ast.fd_origin = `Omp)
  | _ -> Alcotest.fail "loop directive should govern the do and eat its end line"

let test_parse_region_directive () =
  match
    body_of (wrap "  !$acc kernels\n  a = 0.1d0\n  b = 0.2d0\n  !$acc end kernels")
  with
  | [ { s = Ast.FDirective (d, [ _; _ ]); _ } ] ->
      checkb "origin acc" true (d.Ast.fd_origin = `Acc)
  | _ -> Alcotest.fail "block directive should absorb region statements"

let test_parse_nested_regions () =
  match
    body_of
      (wrap
         "  !$omp parallel\n  !$omp single\n  !$omp taskloop\n  do i = 1, 4\n    a(i) = 0.0d0\n  end do\n  !$omp end taskloop\n  !$omp end single\n  !$omp end parallel")
  with
  | [ { s = Ast.FDirective (_, [ { s = Ast.FDirective (_, [ { s = Ast.FDirective (_, [ _ ]); _ } ]); _ } ]); _ } ]
    -> ()
  | _ -> Alcotest.fail "parallel > single > taskloop nesting"

let test_parse_standalone_directive () =
  match body_of (wrap "  !$omp target enter data map(alloc: a)\n  a = 0.0d0") with
  | [ { s = Ast.FDirective (_, []); _ }; { s = Ast.FAssign _; _ } ] -> ()
  | _ -> Alcotest.fail "enter-data is standalone"

let test_parse_error_cases () =
  let fails src =
    match parse src with exception Parser.Parse_error _ -> true | _ -> false
  in
  checkb "missing end" true (fails "program t\nx = 1\n");
  checkb "bad do" true (fails "program t\ndo i = 1\nend do\nend program\n")

(* --- trees --- *)

let test_tsrc_lines () =
  let t = Cst.t_src ~file:"t" "x = 1\ny = 2\n" in
  checki "one node per line" 2 (List.length (Tree.children t))

let test_tsem_shapes () =
  let f = parse (wrap "  !$omp parallel do\n  do i = 1, 4\n    a(i) = b(i)\n  end do\n  !$omp end parallel do") in
  let t = Sem.of_file f in
  checkb "f: prefix" true
    (List.for_all
       (fun (l : Label.t) ->
         String.length l.Label.kind >= 2
         && (String.sub l.Label.kind 0 2 = "f:"
            || String.sub l.Label.kind 0 2 = "om"
            || String.sub l.Label.kind 0 2 = "ac"))
       (Tree.preorder t));
  checkb "directive node" true
    (Tree.exists (fun (l : Label.t) -> l.Label.kind = "omp-directive") t);
  checkb "omp implicit dsa" true
    (Tree.exists (fun (l : Label.t) -> l.Label.kind = "omp-implicit-dsa") t)

let test_tsem_acc_no_implicit () =
  let f = parse (wrap "  !$acc kernels\n  a = 0.1d0\n  !$acc end kernels") in
  let t = Sem.of_file f in
  checkb "acc introduces no implicit nodes" false
    (Tree.exists (fun (l : Label.t) -> l.Label.kind = "omp-implicit-dsa") t)

let test_corpus_roundtrip () =
  List.iter
    (fun (cb : Sv_corpus.Emit.codebase) ->
      let src = List.assoc cb.Sv_corpus.Emit.main_file cb.Sv_corpus.Emit.files in
      checks cb.Sv_corpus.Emit.model src
        (Cst.reconstruct (Token.lex ~file:"t" src)))
    (Sv_corpus.Babelstream_f.all ())

let () =
  Alcotest.run "lang_f"
    [
      ( "lexer",
        [
          Alcotest.test_case "roundtrip" `Quick test_lex_roundtrip;
          Alcotest.test_case "token kinds" `Quick test_lex_kinds;
          Alcotest.test_case "corpus roundtrip" `Quick test_corpus_roundtrip;
        ] );
      ( "parser",
        [
          Alcotest.test_case "program shape" `Quick test_parse_program_shape;
          Alcotest.test_case "subroutine" `Quick test_parse_subroutine;
          Alcotest.test_case "do variants" `Quick test_parse_do_variants;
          Alcotest.test_case "if forms" `Quick test_parse_if_forms;
          Alcotest.test_case "array forms" `Quick test_parse_array_forms;
          Alcotest.test_case "allocate/deallocate" `Quick test_parse_alloc;
          Alcotest.test_case "loop directive" `Quick test_parse_loop_directive;
          Alcotest.test_case "region directive" `Quick test_parse_region_directive;
          Alcotest.test_case "nested regions" `Quick test_parse_nested_regions;
          Alcotest.test_case "standalone directive" `Quick test_parse_standalone_directive;
          Alcotest.test_case "errors" `Quick test_parse_error_cases;
        ] );
      ( "trees",
        [
          Alcotest.test_case "t_src lines" `Quick test_tsrc_lines;
          Alcotest.test_case "t_sem shapes" `Quick test_tsem_shapes;
          Alcotest.test_case "acc has no implicit nodes" `Quick test_tsem_acc_no_implicit;
        ] );
    ]
