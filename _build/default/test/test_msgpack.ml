(* Tests for Sv_msgpack: byte-exact encodings against the MessagePack
   specification, decode errors, and round-trip properties. *)

module M = Sv_msgpack.Msgpack

let checkb = Alcotest.(check bool)
let bytes_of l = String.init (List.length l) (fun i -> Char.chr (List.nth l i))
let check_bytes name v expected =
  Alcotest.(check string) name (bytes_of expected) (M.encode v)

let test_spec_nil_bool () =
  check_bytes "nil" M.Nil [ 0xC0 ];
  check_bytes "false" (M.Bool false) [ 0xC2 ];
  check_bytes "true" (M.Bool true) [ 0xC3 ]

let test_spec_ints () =
  check_bytes "positive fixint" (M.Int 7) [ 0x07 ];
  check_bytes "max fixint" (M.Int 127) [ 0x7F ];
  check_bytes "uint8" (M.Int 200) [ 0xCC; 200 ];
  check_bytes "uint16" (M.Int 0x1234) [ 0xCD; 0x12; 0x34 ];
  check_bytes "uint32" (M.Int 0x12345678) [ 0xCE; 0x12; 0x34; 0x56; 0x78 ];
  check_bytes "negative fixint" (M.Int (-1)) [ 0xFF ];
  check_bytes "negative fixint low" (M.Int (-32)) [ 0xE0 ];
  check_bytes "int8" (M.Int (-100)) [ 0xD0; 0x9C ];
  check_bytes "int16" (M.Int (-1000)) [ 0xD1; 0xFC; 0x18 ];
  check_bytes "int32" (M.Int (-100000)) [ 0xD2; 0xFF; 0xFE; 0x79; 0x60 ]

let test_spec_float () =
  check_bytes "float64 1.0" (M.Float 1.0)
    [ 0xCB; 0x3F; 0xF0; 0x00; 0x00; 0x00; 0x00; 0x00; 0x00 ]

let test_spec_str () =
  check_bytes "fixstr" (M.Str "abc") [ 0xA3; Char.code 'a'; Char.code 'b'; Char.code 'c' ];
  let s40 = String.make 40 'x' in
  checkb "str8 header" true
    (String.length (M.encode (M.Str s40)) = 42
    && (M.encode (M.Str s40)).[0] = '\xD9'
    && Char.code (M.encode (M.Str s40)).[1] = 40)

let test_spec_containers () =
  check_bytes "fixarray" (M.Arr [ M.Int 1; M.Int 2 ]) [ 0x92; 0x01; 0x02 ];
  check_bytes "fixmap" (M.Map [ (M.Str "a", M.Int 1) ])
    [ 0x81; 0xA1; Char.code 'a'; 0x01 ];
  check_bytes "bin8" (M.Bin "\x00\xff") [ 0xC4; 2; 0x00; 0xFF ]

let test_decode_float32 () =
  (* 1.5 as big-endian float32: 0x3FC00000 *)
  let bytes = bytes_of [ 0xCA; 0x3F; 0xC0; 0x00; 0x00 ] in
  checkb "float32 widens" true (M.decode bytes = M.Float 1.5)

let test_decode_errors () =
  let fails s =
    match M.decode s with exception M.Decode_error _ -> true | _ -> false
  in
  checkb "empty" true (fails "");
  checkb "truncated str" true (fails (bytes_of [ 0xA3; Char.code 'a' ]));
  checkb "truncated u16" true (fails (bytes_of [ 0xCD; 0x01 ]));
  checkb "trailing bytes" true (fails (bytes_of [ 0x01; 0x02 ]));
  checkb "unsupported ext tag" true (fails (bytes_of [ 0xC7; 0x00; 0x00 ]))

let test_decode_prefix () =
  let buf = M.encode (M.Int 5) ^ M.encode (M.Str "x") in
  let v1, p1 = M.decode_prefix buf 0 in
  let v2, p2 = M.decode_prefix buf p1 in
  checkb "first value" true (v1 = M.Int 5);
  checkb "second value" true (v2 = M.Str "x");
  checkb "consumed all" true (p2 = String.length buf)

(* random message generator *)
let gen_msg =
  QCheck.Gen.(
    sized_size (int_bound 4) (fix (fun self n ->
        let scalar =
          oneof
            [
              return M.Nil;
              map (fun b -> M.Bool b) bool;
              map (fun i -> M.Int i) (int_range (-1_000_000_000) 1_000_000_000);
              map (fun f -> M.Float (Int64.float_of_bits (Int64.of_int f))) int;
              map (fun s -> M.Str s) (string_size (int_bound 40));
              map (fun s -> M.Bin s) (string_size (int_bound 40));
            ]
        in
        if n = 0 then scalar
        else
          oneof
            [
              scalar;
              map (fun xs -> M.Arr xs) (list_size (int_bound 5) (self (n - 1)));
              map (fun kvs -> M.Map kvs)
                (list_size (int_bound 4) (pair (self 0) (self (n - 1))));
            ])))

(* avoid NaN (NaN <> NaN breaks structural round-trip comparison) *)
let no_nan v =
  let rec go = function
    | M.Float f -> not (Float.is_nan f)
    | M.Arr xs -> List.for_all go xs
    | M.Map kvs -> List.for_all (fun (k, v) -> go k && go v) kvs
    | _ -> true
  in
  go v

let arb_msg =
  QCheck.make ~print:(fun v -> Format.asprintf "%a" M.pp v) gen_msg

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode round-trip" ~count:1000 arb_msg (fun v ->
      QCheck.assume (no_nan v);
      M.equal v (M.decode (M.encode v)))

let prop_int_roundtrip =
  QCheck.Test.make ~name:"all int widths round-trip" ~count:1000
    QCheck.(int_range min_int max_int)
    (fun i -> M.decode (M.encode (M.Int i)) = M.Int i)

let prop_encode_deterministic =
  QCheck.Test.make ~name:"encoding is deterministic" ~count:300 arb_msg (fun v ->
      M.encode v = M.encode v)

(* msgpack is a prefix code: no strict prefix of a valid encoding is
   itself decodable as a whole value *)
let prop_prefix_truncation =
  QCheck.Test.make ~name:"every strict prefix fails to decode" ~count:500
    QCheck.(pair arb_msg (int_bound 100_000))
    (fun (v, cut_seed) ->
      QCheck.assume (no_nan v);
      let e = M.encode v in
      let cut = cut_seed mod String.length e in
      match M.decode (String.sub e 0 cut) with
      | exception M.Decode_error _ -> true
      | _ -> false)

(* the scheduler and the Codebase DB writer frame several values into one
   buffer with encode_to; decode_prefix must stream them all back out *)
let prop_encode_to_framing =
  QCheck.Test.make ~name:"encode_to stream round-trips via decode_prefix" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_bound 8) arb_msg)
    (fun vs ->
      QCheck.assume (List.for_all no_nan vs);
      let b = Buffer.create 64 in
      List.iter (M.encode_to b) vs;
      let s = Buffer.contents b in
      let rec read pos acc =
        if pos = String.length s then List.rev acc
        else
          let v, pos' = M.decode_prefix s pos in
          read pos' (v :: acc)
      in
      List.length vs = List.length (read 0 [])
      && List.for_all2 M.equal vs (read 0 []))

let () =
  Alcotest.run "msgpack"
    [
      ( "spec-bytes",
        [
          Alcotest.test_case "nil/bool" `Quick test_spec_nil_bool;
          Alcotest.test_case "integers" `Quick test_spec_ints;
          Alcotest.test_case "float64" `Quick test_spec_float;
          Alcotest.test_case "strings" `Quick test_spec_str;
          Alcotest.test_case "containers" `Quick test_spec_containers;
          Alcotest.test_case "float32 decode" `Quick test_decode_float32;
        ] );
      ( "errors",
        [
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
          Alcotest.test_case "decode_prefix" `Quick test_decode_prefix;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_int_roundtrip; prop_encode_deterministic;
            prop_prefix_truncation; prop_encode_to_framing ] );
    ]
