(* Tests for Sv_lang_c: lexer round-trips, parser coverage of every
   dialect construct, preprocessor behaviour, CST normalisation, T_sem
   shapes and the inliner. *)

module Token = Sv_lang_c.Token
module Cst = Sv_lang_c.Cst
module Parser = Sv_lang_c.Parser
module Ast = Sv_lang_c.Ast
module Preproc = Sv_lang_c.Preproc
module Sem = Sv_lang_c.Sem_tree
module Tree = Sv_tree.Tree
module Label = Sv_tree.Label

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let parse src = Parser.parse ~file:"t.cpp" src
let tops src = (parse src).Ast.t_tops

(* --- lexer --- *)

let test_lex_roundtrip () =
  let src = "int main() { /* c */ return 0; } // done\n" in
  checks "reconstruct" src (Cst.reconstruct (Token.lex ~file:"t" src))

let test_lex_kinds () =
  let kinds src =
    List.map (fun (t : Token.t) -> t.kind) (Token.significant (Token.lex ~file:"t" src))
  in
  checkb "keyword" true (kinds "for" = [ Token.Keyword ]);
  checkb "ident" true (kinds "foo" = [ Token.Ident ]);
  checkb "int" true (kinds "42" = [ Token.IntLit ]);
  checkb "float" true (kinds "4.25" = [ Token.FloatLit ]);
  checkb "float suffix" true (kinds "1.0f" = [ Token.FloatLit ]);
  checkb "exponent" true (kinds "1e-3" = [ Token.FloatLit ]);
  checkb "string" true (kinds "\"hi\\n\"" = [ Token.StringLit ]);
  checkb "char" true (kinds "'x'" = [ Token.CharLit ]);
  checkb "pragma" true (kinds "#pragma omp parallel\n" = [ Token.Pragma ]);
  checkb "pp" true (kinds "#include \"x.h\"\n" = [ Token.PpDirective ]);
  checkb "cuda attr is keyword" true (kinds "__global__" = [ Token.Keyword ])

let test_lex_chevrons () =
  let texts src =
    List.map (fun (t : Token.t) -> t.text) (Token.significant (Token.lex ~file:"t" src))
  in
  checkb "launch chevrons" true (texts "k<<<g, b>>>" = [ "k"; "<<<"; "g"; ","; "b"; ">>>" ]);
  checkb "shift stays shift" true (texts "a << b" = [ "a"; "<<"; "b" ])

let test_lex_errors () =
  checkb "unterminated comment" true
    (match Token.lex ~file:"t" "/* oops" with
    | exception Token.Lex_error _ -> true
    | _ -> false);
  checkb "unterminated string" true
    (match Token.lex ~file:"t" "\"oops" with
    | exception Token.Lex_error _ -> true
    | _ -> false)

let test_lex_locations () =
  let toks = Token.significant (Token.lex ~file:"t" "int x;\nint y;\n") in
  let y_tok = List.nth toks 4 in
  checki "line tracking" 2 y_tok.Token.loc.Sv_util.Loc.start.Sv_util.Loc.line

(* --- parser --- *)

let test_parse_function_shapes () =
  match tops "double f(int a, double *b);\ndouble f(int a, double *b) { return 1.0; }" with
  | [ Ast.Func proto; Ast.Func def ] ->
      checkb "proto has no body" true (proto.Ast.f_body = None);
      checkb "def has body" true (def.Ast.f_body <> None);
      checki "params" 2 (List.length def.Ast.f_params)
  | _ -> Alcotest.fail "expected two functions"

let test_parse_attrs () =
  match tops "__global__ void k(double *a) { a[0] = 1.0; }" with
  | [ Ast.Func f ] -> checkb "global attr" true (List.mem Ast.AGlobal f.Ast.f_attrs)
  | _ -> Alcotest.fail "expected kernel"

let test_parse_template () =
  match tops "template<typename T, typename U> T f(T x, U y) { return x; }" with
  | [ Ast.Func f ] ->
      Alcotest.(check (list string)) "tparams" [ "T"; "U" ] f.Ast.f_tparams
  | _ -> Alcotest.fail "expected template function"

let test_parse_struct () =
  match tops "struct Atom { float x, y; int type; };" with
  | [ Ast.Record r ] -> checki "fields" 3 (List.length r.Ast.r_fields)
  | _ -> Alcotest.fail "expected record"

let test_parse_launch () =
  let stmt_of src =
    match tops (Printf.sprintf "void f() { %s }" src) with
    | [ Ast.Func { f_body = Some [ s ]; _ } ] -> s
    | _ -> Alcotest.fail "expected one statement"
  in
  match (stmt_of "k<<<grid, block>>>(a, n);").Ast.s with
  | Ast.ExprS { e = Ast.KernelLaunch (_, cfg, args); _ } ->
      checki "config" 2 (List.length cfg);
      checki "args" 2 (List.length args)
  | _ -> Alcotest.fail "expected kernel launch"

let test_parse_lambda () =
  match tops "void f() { g([=](int i) { h(i); }); }" with
  | [ Ast.Func { f_body = Some [ { s = Ast.ExprS { e = Ast.Call (_, _, [ arg ]); _ }; _ } ]; _ } ]
    -> (
      match arg.Ast.e with
      | Ast.Lambda (Ast.ByValue, [ p ], _) -> checks "param" "i" p.Ast.p_name
      | _ -> Alcotest.fail "expected by-value lambda")
  | _ -> Alcotest.fail "expected call with lambda"

let test_parse_template_call () =
  match tops "void f() { h.parallel_for<class k>(r, body); }" with
  | [ Ast.Func { f_body = Some [ { s = Ast.ExprS { e = Ast.Call (callee, targs, args); _ }; _ } ]; _ } ]
    ->
      checki "template args" 1 (List.length targs);
      checki "args" 2 (List.length args);
      (match callee.Ast.e with
      | Ast.Member (_, "parallel_for", `Dot) -> ()
      | _ -> Alcotest.fail "expected member callee")
  | _ -> Alcotest.fail "expected template member call"

let test_parse_less_than_not_template () =
  match tops "void f() { if (a < b) { g(); } }" with
  | [ Ast.Func { f_body = Some [ { s = Ast.If (cond, _, _); _ } ]; _ } ] -> (
      match cond.Ast.e with
      | Ast.Binary (Ast.Lt, _, _) -> ()
      | _ -> Alcotest.fail "expected comparison")
  | _ -> Alcotest.fail "expected if"

let test_parse_directive_attach () =
  match tops "void f() {\n#pragma omp parallel for reduction(+ : s)\nfor (int i = 0; i < n; i++) { s += i; }\n}" with
  | [ Ast.Func { f_body = Some [ { s = Ast.Directive (d, Some body); _ } ]; _ } ] ->
      checkb "origin" true (d.Ast.d_origin = `Omp);
      checkb "has reduction clause" true
        (List.exists (fun (w, _) -> w = "reduction") d.Ast.d_clauses);
      checkb "governs the for" true
        (match body.Ast.s with Ast.For _ -> true | _ -> false)
  | _ -> Alcotest.fail "expected directive-with-statement"

let test_parse_directive_standalone () =
  match tops "void f() {\n#pragma omp target enter data map(alloc: a[0:n])\nint x = 0;\n}" with
  | [ Ast.Func { f_body = Some [ { s = Ast.Directive (_, None); _ }; { s = Ast.Decl _; _ } ]; _ } ]
    -> ()
  | _ -> Alcotest.fail "enter-data should not absorb the declaration"

let test_parse_decl_forms () =
  let decl src =
    match tops (Printf.sprintf "void f() { %s }" src) with
    | [ Ast.Func { f_body = Some [ { s = Ast.Decl (ty, names); _ } ]; _ } ] -> (ty, names)
    | _ -> Alcotest.fail "expected declaration"
  in
  let ty, names = decl "const double scalar = 0.4;" in
  checkb "const double" true (ty = Ast.TConst Ast.TDouble);
  checki "one declarator" 1 (List.length names);
  let ty, _ = decl "double *a;" in
  checkb "pointer" true (ty = Ast.TPtr Ast.TDouble);
  let ty, _ = decl "__shared__ double tile[64];" in
  checkb "fixed array" true (ty = Ast.TArr (Ast.TDouble, Some 64));
  let _, names = decl "int i, j, k;" in
  checki "multi declarator" 3 (List.length names);
  let _, names = decl "Kokkos::View<double*> a(\"a\", n);" in
  checkb "ctor initialiser" true
    (match names with
    | [ (_, Some { e = Ast.InitList [ _; _ ]; _ }) ] -> true
    | _ -> false)

let test_parse_expressions () =
  let expr src =
    match tops (Printf.sprintf "void f() { x = %s; }" src) with
    | [ Ast.Func { f_body = Some [ { s = Ast.ExprS { e = Ast.Assign (None, _, rhs); _ }; _ } ]; _ } ]
      -> rhs
    | _ -> Alcotest.fail "expected assignment"
  in
  (match (expr "a + b * c").Ast.e with
  | Ast.Binary (Ast.Add, _, { e = Ast.Binary (Ast.Mul, _, _); _ }) -> ()
  | _ -> Alcotest.fail "precedence: * binds tighter");
  (match (expr "a < b && c > d").Ast.e with
  | Ast.Binary (Ast.LAnd, _, _) -> ()
  | _ -> Alcotest.fail "&& loosest");
  (match (expr "c ? a : b").Ast.e with
  | Ast.Ternary _ -> ()
  | _ -> Alcotest.fail "ternary");
  (match (expr "(double)n").Ast.e with
  | Ast.Cast (Ast.TDouble, _) -> ()
  | _ -> Alcotest.fail "C cast");
  (match (expr "(a + b)").Ast.e with
  | Ast.Binary (Ast.Add, _, _) -> ()
  | _ -> Alcotest.fail "parens are not casts");
  (match (expr "sizeof(double)").Ast.e with
  | Ast.SizeofT Ast.TDouble -> ()
  | _ -> Alcotest.fail "sizeof");
  (match (expr "new double[n]").Ast.e with
  | Ast.New (Ast.TDouble, Some _) -> ()
  | _ -> Alcotest.fail "array new");
  match (expr "a->b.c").Ast.e with
  | Ast.Member ({ e = Ast.Member (_, "b", `Arrow); _ }, "c", `Dot) -> ()
  | _ -> Alcotest.fail "member chain"

let test_parse_errors () =
  let fails src = match parse src with exception Parser.Parse_error _ -> true | _ -> false in
  checkb "missing semicolon" true (fails "void f() { int x }");
  checkb "missing paren" true (fails "void f( { }");
  checkb "stray token" true (fails "void f() { ] }")

(* --- preprocessor --- *)

let test_preproc_include () =
  let files = [ ("a.h", "int a_decl();\n") ] in
  let resolve name = List.assoc_opt name files in
  let r = Preproc.run ~resolve ~defines:[] ~file:"m.cpp" "#include \"a.h\"\nint main() { return 0; }\n" in
  Alcotest.(check (list string)) "deps" [ "a.h" ] r.Preproc.deps;
  checkb "spliced decl" true
    (List.exists (fun (t : Token.t) -> t.Token.text = "a_decl") r.Preproc.tokens);
  checkb "include loc preserved" true
    (List.exists
       (fun (t : Token.t) -> t.Token.text = "a_decl" && t.Token.loc.Sv_util.Loc.file = "a.h")
       r.Preproc.tokens)

let test_preproc_include_once () =
  let files = [ ("a.h", "int one;\n") ] in
  let resolve name = List.assoc_opt name files in
  let r =
    Preproc.run ~resolve ~defines:[] ~file:"m.cpp"
      "#include \"a.h\"\n#include \"a.h\"\nint main() { return one; }\n"
  in
  checki "spliced once" 1
    (List.length (List.filter (fun (t : Token.t) -> t.Token.text = "one") r.Preproc.tokens) - 1)

let test_preproc_missing () =
  let r =
    Preproc.run ~resolve:(fun _ -> None) ~defines:[] ~file:"m.cpp"
      "#include <vector>\nint main() { return 0; }\n"
  in
  Alcotest.(check (list string)) "missing recorded" [ "vector" ] r.Preproc.missing

let test_preproc_define () =
  let r =
    Preproc.run ~resolve:(fun _ -> None) ~defines:[] ~file:"m.cpp"
      "#define N 1024\nint x = N;\n"
  in
  checkb "macro expanded" true
    (List.exists (fun (t : Token.t) -> t.Token.text = "1024") r.Preproc.tokens);
  checkb "name gone" true
    (not (List.exists (fun (t : Token.t) -> t.Token.text = "N") r.Preproc.tokens))

let test_preproc_define_multi_token () =
  let r =
    Preproc.run ~resolve:(fun _ -> None) ~defines:[] ~file:"m.cpp"
      "#define KOKKOS_LAMBDA [=]\nauto f = KOKKOS_LAMBDA (int i) { g(i); };\n"
  in
  let texts = List.map (fun (t : Token.t) -> t.Token.text) r.Preproc.tokens in
  checkb "expanded to lambda intro" true
    (List.exists (fun t -> t = "[") texts && List.exists (fun t -> t = "=") texts)

let test_preproc_conditionals () =
  let run defines src = Preproc.run ~resolve:(fun _ -> None) ~defines ~file:"m.cpp" src in
  let has r text =
    List.exists (fun (t : Token.t) -> t.Token.text = text) r.Preproc.tokens
  in
  let src = "#ifdef USE_GPU\nint gpu;\n#else\nint cpu;\n#endif\n" in
  let with_def = run [ ("USE_GPU", "1") ] src in
  checkb "ifdef taken" true (has with_def "gpu");
  checkb "else skipped" false (has with_def "cpu");
  let without = run [] src in
  checkb "ifdef skipped" false (has without "gpu");
  checkb "else taken" true (has without "cpu");
  let ifndef = run [] "#ifndef GUARD\nint body;\n#endif\n" in
  checkb "ifndef taken" true (has ifndef "body")

let test_preproc_pragma_survives () =
  let r =
    Preproc.run ~resolve:(fun _ -> None) ~defines:[] ~file:"m.cpp"
      "#pragma omp parallel for\nfor (int i = 0; i < n; i++) { }\n"
  in
  checkb "pragma kept" true
    (List.exists (fun (t : Token.t) -> t.Token.kind = Token.Pragma) r.Preproc.tokens)

(* --- CST / T_src --- *)

let test_tsrc_anonymises () =
  let t = Cst.t_src ~file:"t" "int foo = bar + 42;" in
  let labels = Tree.preorder t in
  checkb "idents anonymised" true
    (List.for_all
       (fun (l : Label.t) -> l.Label.kind <> "ident" || l.Label.text = "")
       labels);
  checkb "literal kept" true
    (List.exists (fun (l : Label.t) -> l.Label.text = "42") labels);
  checkb "keyword kept" true
    (List.exists (fun (l : Label.t) -> l.Label.kind = "kw" && l.Label.text = "int") labels)

let test_tsrc_drops_comments () =
  let a = Cst.t_src ~file:"t" "int x; // note\n/* block */ int y;" in
  let b = Cst.t_src ~file:"t" "int x;\nint y;" in
  checki "comment-insensitive" 0
    (Sv_tree.Ted.distance ~eq:Label.equal a b)

let test_tsrc_directive_structured () =
  let t = Cst.t_src ~file:"t" "#pragma omp target teams map(to: a)\n" in
  checkb "structured omp node" true
    (Tree.exists (fun (l : Label.t) -> l.Label.kind = "omp:target") t);
  checkb "clause args kept" true
    (Tree.exists (fun (l : Label.t) -> l.Label.kind = "omp-clause-args") t)

let test_cst_nesting () =
  let t = Cst.t_src ~file:"t" "f(a[i], { 1 });" in
  checkb "parens node" true (Tree.exists (fun (l : Label.t) -> l.Label.kind = "parens") t);
  checkb "brackets node" true
    (Tree.exists (fun (l : Label.t) -> l.Label.kind = "brackets") t);
  checkb "braces node" true (Tree.exists (fun (l : Label.t) -> l.Label.kind = "braces") t)

(* --- T_sem --- *)

let sem src = Sem.of_tunit (parse src)

let test_tsem_name_anonymisation () =
  let a = sem "void f(int alpha) { alpha = alpha + 1; }" in
  let b = sem "void g(int omega) { omega = omega + 1; }" in
  checki "alpha-equivalent trees are identical" 0
    (Sv_tree.Ted.distance ~eq:Label.equal a b)

let test_tsem_literals_matter () =
  let a = sem "int x = 1;" and b = sem "int x = 2;" in
  checkb "literal difference visible" true
    (Sv_tree.Ted.distance ~eq:Label.equal a b > 0)

let test_tsem_omp_implicit_nodes () =
  let t = sem "void f() {\n#pragma omp parallel for\nfor (int i = 0; i < n; i++) { }\n}" in
  checkb "captured stmt" true
    (Tree.exists (fun (l : Label.t) -> l.Label.kind = "omp-captured-stmt") t);
  checkb "implicit dsa" true
    (Tree.exists (fun (l : Label.t) -> l.Label.kind = "omp-implicit-dsa") t)

let test_tsem_kernel_launch_node () =
  let t = sem "__global__ void k(int n) { }\nvoid f() { k<<<1, 2>>>(0); }" in
  checkb "kernel-launch kind" true
    (Tree.exists (fun (l : Label.t) -> l.Label.kind = "kernel-launch") t);
  checkb "launch config child" true
    (Tree.exists (fun (l : Label.t) -> l.Label.kind = "launch-config") t)

(* --- inliner --- *)

let test_inliner_grows_called () =
  let src = "void helper(int x) { g(x); g(x); }\nvoid f() { helper(1); }" in
  let u = parse src in
  let env name = Ast.find_function u name in
  let inlined = Sem.inline_calls ~env ~depth:3 u in
  checkb "inlined tree is larger" true
    (Tree.size (Sem.of_tunit inlined) > Tree.size (Sem.of_tunit u))

let test_inliner_recursion_safe () =
  let src = "void f(int x) { f(x); }" in
  let u = parse src in
  let env name = Ast.find_function u name in
  let inlined = Sem.inline_calls ~env ~depth:5 u in
  checkb "terminates and stays finite" true (Tree.size (Sem.of_tunit inlined) < 1000)

let test_inliner_unknown_untouched () =
  let src = "void f() { mystery(1); }" in
  let u = parse src in
  let env _ = None in
  let inlined = Sem.inline_calls ~env ~depth:3 u in
  checki "no change" 0
    (Sv_tree.Ted.distance ~eq:Label.equal (Sem.of_tunit u) (Sem.of_tunit inlined))

let test_parse_nested_include_chain () =
  let files =
    [ ("a.h", "#include \"b.h\"\nint from_a;\n");
      ("b.h", "#include \"c.h\"\nint from_b;\n");
      ("c.h", "int from_c;\n") ]
  in
  let resolve n = List.assoc_opt n files in
  let r =
    Preproc.run ~resolve ~defines:[] ~file:"m.cpp" "#include \"a.h\"\nint main() { return 0; }\n"
  in
  Alcotest.(check (list string)) "deps in first-inclusion order" [ "a.h"; "b.h"; "c.h" ]
    r.Preproc.deps;
  List.iter
    (fun name ->
      checkb name true
        (List.exists (fun (t : Token.t) -> t.Token.text = name) r.Preproc.tokens))
    [ "from_a"; "from_b"; "from_c" ]

let test_preproc_undef () =
  let r =
    Preproc.run ~resolve:(fun _ -> None) ~defines:[]
      ~file:"m.cpp" "#define N 1\nint a = N;\n#undef N\nint b = N;\n"
  in
  let texts = List.map (fun (t : Token.t) -> t.Token.text) r.Preproc.tokens in
  checkb "first use expanded" true (List.mem "1" texts);
  checkb "second use untouched" true (List.mem "N" texts)

let test_parse_compound_ops () =
  let rhs_op src =
    match tops (Printf.sprintf "void f() { %s }" src) with
    | [ Ast.Func { f_body = Some [ { s = Ast.ExprS { e = Ast.Assign (op, _, _); _ }; _ } ]; _ } ]
      -> op
    | _ -> Alcotest.fail "expected assignment"
  in
  checkb "+=" true (rhs_op "x += 1;" = Some Ast.Add);
  checkb "-=" true (rhs_op "x -= 1;" = Some Ast.Sub);
  checkb "*=" true (rhs_op "x *= 2;" = Some Ast.Mul);
  checkb "/=" true (rhs_op "x /= 2;" = Some Ast.Div);
  checkb "plain =" true (rhs_op "x = 2;" = None)

let test_parse_do_while_and_nesting () =
  match tops "void f() { do { g(); } while (x < 3); }" with
  | [ Ast.Func { f_body = Some [ { s = Ast.DoWhile ([ _ ], _); _ } ]; _ } ] -> ()
  | _ -> Alcotest.fail "do-while"

let test_parse_else_chain () =
  match tops "void f() { if (a) { g(); } else if (b) { h(); } else { k(); } }" with
  | [ Ast.Func { f_body = Some [ { s = Ast.If (_, _, [ { s = Ast.If (_, _, [ _ ]); _ } ]); _ } ]; _ } ]
    -> ()
  | _ -> Alcotest.fail "else-if chain nests"

let test_parse_unary_forms () =
  let expr src =
    match tops (Printf.sprintf "void f() { x = %s; }" src) with
    | [ Ast.Func { f_body = Some [ { s = Ast.ExprS { e = Ast.Assign (None, _, rhs); _ }; _ } ]; _ } ]
      -> rhs
    | _ -> Alcotest.fail "expected assignment"
  in
  (match (expr "!done").Ast.e with
  | Ast.Unary (Ast.Not, _) -> ()
  | _ -> Alcotest.fail "logical not");
  (match (expr "-a * b").Ast.e with
  | Ast.Binary (Ast.Mul, { e = Ast.Unary (Ast.Neg, _); _ }, _) -> ()
  | _ -> Alcotest.fail "unary minus binds before *");
  (match (expr "*p + 1").Ast.e with
  | Ast.Binary (Ast.Add, { e = Ast.Unary (Ast.Deref, _); _ }, _) -> ()
  | _ -> Alcotest.fail "deref binds before +");
  match (expr "i++").Ast.e with
  | Ast.Unary (Ast.PostInc, _) -> ()
  | _ -> Alcotest.fail "post increment"

let test_tsem_stable_under_formatting () =
  let a = sem "void f(int n) { for (int i = 0; i < n; i++) { g(i); } }" in
  let b = sem "void f(int n)\n{\n  for (int i = 0;\n       i < n;\n       i++)\n  {\n    g(i);\n  }\n}" in
  checki "formatting is invisible to T_sem" 0
    (Sv_tree.Ted.distance ~eq:Label.equal (Label.strip_locs a) (Label.strip_locs b))

(* --- corpus round-trip property --- *)

let all_corpus_files =
  List.concat_map
    (fun (cb : Sv_corpus.Emit.codebase) -> cb.Sv_corpus.Emit.files)
    (Sv_corpus.Babelstream.all () @ Sv_corpus.Tealeaf.all ())

let test_corpus_lex_roundtrip () =
  List.iter
    (fun (name, content) ->
      checks (Printf.sprintf "roundtrip %s" name) content
        (Cst.reconstruct (Token.lex ~file:name content)))
    all_corpus_files

let () =
  Alcotest.run "lang_c"
    [
      ( "lexer",
        [
          Alcotest.test_case "roundtrip" `Quick test_lex_roundtrip;
          Alcotest.test_case "token kinds" `Quick test_lex_kinds;
          Alcotest.test_case "chevrons" `Quick test_lex_chevrons;
          Alcotest.test_case "errors" `Quick test_lex_errors;
          Alcotest.test_case "locations" `Quick test_lex_locations;
          Alcotest.test_case "corpus roundtrip" `Quick test_corpus_lex_roundtrip;
        ] );
      ( "parser",
        [
          Alcotest.test_case "functions" `Quick test_parse_function_shapes;
          Alcotest.test_case "attributes" `Quick test_parse_attrs;
          Alcotest.test_case "templates" `Quick test_parse_template;
          Alcotest.test_case "structs" `Quick test_parse_struct;
          Alcotest.test_case "kernel launch" `Quick test_parse_launch;
          Alcotest.test_case "lambdas" `Quick test_parse_lambda;
          Alcotest.test_case "template calls" `Quick test_parse_template_call;
          Alcotest.test_case "less-than vs template" `Quick test_parse_less_than_not_template;
          Alcotest.test_case "directive attach" `Quick test_parse_directive_attach;
          Alcotest.test_case "standalone directive" `Quick test_parse_directive_standalone;
          Alcotest.test_case "declarations" `Quick test_parse_decl_forms;
          Alcotest.test_case "expressions" `Quick test_parse_expressions;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "compound ops" `Quick test_parse_compound_ops;
          Alcotest.test_case "do-while" `Quick test_parse_do_while_and_nesting;
          Alcotest.test_case "else-if chain" `Quick test_parse_else_chain;
          Alcotest.test_case "unary forms" `Quick test_parse_unary_forms;
        ] );
      ( "preproc",
        [
          Alcotest.test_case "include splice" `Quick test_preproc_include;
          Alcotest.test_case "include once" `Quick test_preproc_include_once;
          Alcotest.test_case "missing header" `Quick test_preproc_missing;
          Alcotest.test_case "object macro" `Quick test_preproc_define;
          Alcotest.test_case "multi-token macro" `Quick test_preproc_define_multi_token;
          Alcotest.test_case "conditionals" `Quick test_preproc_conditionals;
          Alcotest.test_case "pragma survives" `Quick test_preproc_pragma_survives;
          Alcotest.test_case "nested include chain" `Quick test_parse_nested_include_chain;
          Alcotest.test_case "undef" `Quick test_preproc_undef;
        ] );
      ( "t_src",
        [
          Alcotest.test_case "anonymisation" `Quick test_tsrc_anonymises;
          Alcotest.test_case "comments removed" `Quick test_tsrc_drops_comments;
          Alcotest.test_case "directives structured" `Quick test_tsrc_directive_structured;
          Alcotest.test_case "bracket nesting" `Quick test_cst_nesting;
        ] );
      ( "t_sem",
        [
          Alcotest.test_case "alpha equivalence" `Quick test_tsem_name_anonymisation;
          Alcotest.test_case "literals matter" `Quick test_tsem_literals_matter;
          Alcotest.test_case "omp implicit nodes" `Quick test_tsem_omp_implicit_nodes;
          Alcotest.test_case "kernel launch node" `Quick test_tsem_kernel_launch_node;
          Alcotest.test_case "formatting invariance" `Quick test_tsem_stable_under_formatting;
        ] );
      ( "inliner",
        [
          Alcotest.test_case "grows on inline" `Quick test_inliner_grows_called;
          Alcotest.test_case "recursion safe" `Quick test_inliner_recursion_safe;
          Alcotest.test_case "unknown untouched" `Quick test_inliner_unknown_untouched;
        ] );
    ]
