test/test_svz.ml: Alcotest Bytes Char Gen List QCheck QCheck_alcotest String Sv_svz
