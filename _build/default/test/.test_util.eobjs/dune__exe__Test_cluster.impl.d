test/test_cluster.ml: Alcotest Array Float Fun List QCheck QCheck_alcotest Sv_cluster
