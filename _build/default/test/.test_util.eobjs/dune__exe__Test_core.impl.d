test/test_core.ml: Alcotest Array Float Lazy List Printf Sv_cluster Sv_core Sv_corpus Sv_perf Sv_tree Sv_util
