test/test_msgpack.mli:
