test/test_lang_c.ml: Alcotest List Printf Sv_corpus Sv_lang_c Sv_tree Sv_util
