test/test_report.ml: Alcotest Float List String Sv_cluster Sv_perf Sv_report Sv_util
