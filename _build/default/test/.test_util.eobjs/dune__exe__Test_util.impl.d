test/test_util.ml: Alcotest Array Float Fun Gen List Option QCheck QCheck_alcotest String Sv_util
