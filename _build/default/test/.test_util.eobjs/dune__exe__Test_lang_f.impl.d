test/test_lang_f.ml: Alcotest List Printf String Sv_corpus Sv_lang_f Sv_tree
