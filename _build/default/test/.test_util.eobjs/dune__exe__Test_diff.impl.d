test/test_diff.ml: Alcotest Array Char List QCheck QCheck_alcotest String Sv_diff
