test/test_ir.ml: Alcotest Format List Result String Sv_corpus Sv_ir Sv_lang_c Sv_lang_f Sv_tree Sv_util
