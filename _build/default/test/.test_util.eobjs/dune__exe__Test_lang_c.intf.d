test/test_lang_c.mli:
