test/test_msgpack.ml: Alcotest Buffer Char Float Format Int64 List QCheck QCheck_alcotest String Sv_msgpack
