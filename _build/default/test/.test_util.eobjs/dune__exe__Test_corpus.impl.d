test/test_corpus.ml: Alcotest List String Sv_corpus Sv_lang_c Sv_metrics
