test/test_lang_f.mli:
