test/test_db.ml: Alcotest List QCheck QCheck_alcotest Result String Sv_core Sv_corpus Sv_db Sv_tree Sv_util
