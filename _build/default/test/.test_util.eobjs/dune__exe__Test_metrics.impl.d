test/test_metrics.ml: Alcotest Float List QCheck QCheck_alcotest String Sv_lang_c Sv_lang_f Sv_metrics Sv_tree Sv_util
