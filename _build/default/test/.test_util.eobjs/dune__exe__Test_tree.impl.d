test/test_tree.ml: Alcotest Format Fun Int List Printf QCheck QCheck_alcotest String Sv_tree Sv_util Sys
