test/test_tree.ml: Alcotest Format Fun Int List QCheck QCheck_alcotest Sv_tree Sv_util
