test/test_perf.ml: Alcotest Float Gen List Option QCheck QCheck_alcotest Sv_perf
