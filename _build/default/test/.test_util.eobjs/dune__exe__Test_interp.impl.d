test/test_interp.ml: Alcotest Format List Printf Result String Sv_corpus Sv_interp Sv_lang_c Sv_lang_f Sv_util
