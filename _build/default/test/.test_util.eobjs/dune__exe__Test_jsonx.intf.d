test/test_jsonx.mli:
