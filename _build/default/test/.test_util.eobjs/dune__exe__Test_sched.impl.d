test/test_sched.ml: Alcotest Array Fun Lazy List Printf String Sv_cluster Sv_core Sv_corpus Sv_db Sv_msgpack Sv_sched
