test/test_jsonx.ml: Alcotest List QCheck QCheck_alcotest String Sv_jsonx
