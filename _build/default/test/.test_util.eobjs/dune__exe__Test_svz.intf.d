test/test_svz.mli:
