(* Tests for Sv_diff: O(NP) edit distance vs the quadratic oracle, LCS,
   Levenshtein, and edit scripts. *)

module Diff = Sv_diff.Diff

let eq = Char.equal
let arr s = Array.init (String.length s) (String.get s)
let ed a b = Diff.edit_distance ~eq (arr a) (arr b)
let checki = Alcotest.(check int)

let test_known_distances () =
  checki "identical" 0 (ed "kitten" "kitten");
  checki "empty vs s" 4 (ed "" "abcd");
  checki "s vs empty" 4 (ed "abcd" "");
  checki "single swap costs 2 (no substitution)" 2 (ed "abc" "axc");
  checki "prefix insert" 1 (ed "bc" "abc");
  checki "classic abcabba/cbabac" 5 (ed "abcabba" "cbabac")

let test_lcs_known () =
  checki "lcs identical" 3 (Diff.lcs_length ~eq (arr "abc") (arr "abc"));
  checki "lcs disjoint" 0 (Diff.lcs_length ~eq (arr "abc") (arr "xyz"));
  checki "lcs classic" 4 (Diff.lcs_length ~eq (arr "abcabba") (arr "cbabac"))

let test_levenshtein_known () =
  checki "kitten/sitting" 3 (Diff.levenshtein ~eq (arr "kitten") (arr "sitting"));
  checki "identical" 0 (Diff.levenshtein ~eq (arr "ab") (arr "ab"));
  checki "substitution is 1" 1 (Diff.levenshtein ~eq (arr "abc") (arr "axc"))

let test_script_replays () =
  let a = arr "abcabba" and b = arr "cbabac" in
  let script = Diff.script ~eq a b in
  let replayed =
    List.filter_map
      (function Diff.Keep c | Diff.Insert c -> Some c | Diff.Delete _ -> None)
      script
  in
  Alcotest.(check (list char)) "replays to b" (Array.to_list b) replayed;
  let cost =
    List.length
      (List.filter (function Diff.Keep _ -> false | _ -> true) script)
  in
  checki "script cost equals distance" (ed "abcabba" "cbabac") cost

let arb_string = QCheck.string_of_size (QCheck.Gen.int_bound 40)

let prop_np_vs_dp =
  QCheck.Test.make ~name:"O(NP) distance equals quadratic DP" ~count:500
    (QCheck.pair arb_string arb_string)
    (fun (a, b) -> ed a b = Diff.edit_distance_dp ~eq (arr a) (arr b))

let prop_symmetric =
  QCheck.Test.make ~name:"insert+delete distance is symmetric" ~count:300
    (QCheck.pair arb_string arb_string)
    (fun (a, b) -> ed a b = ed b a)

let prop_zero_iff_equal =
  QCheck.Test.make ~name:"zero distance iff equal" ~count:300
    (QCheck.pair arb_string arb_string)
    (fun (a, b) -> ed a b = 0 = (a = b))

let prop_bounds =
  QCheck.Test.make ~name:"distance bounds" ~count:300
    (QCheck.pair arb_string arb_string)
    (fun (a, b) ->
      let d = ed a b in
      let la = String.length a and lb = String.length b in
      d >= abs (la - lb) && d <= la + lb && (d - (la + lb)) mod 2 = 0)

let prop_triangle =
  QCheck.Test.make ~name:"triangle inequality" ~count:200
    (QCheck.triple arb_string arb_string arb_string)
    (fun (a, b, c) -> ed a c <= ed a b + ed b c)

let prop_lev_le_ed =
  QCheck.Test.make ~name:"levenshtein <= insert/delete distance" ~count:300
    (QCheck.pair arb_string arb_string)
    (fun (a, b) -> Diff.levenshtein ~eq (arr a) (arr b) <= ed a b)

let prop_lcs_relation =
  QCheck.Test.make ~name:"lcs = (|a|+|b|-d)/2 and bounded" ~count:300
    (QCheck.pair arb_string arb_string)
    (fun (a, b) ->
      let l = Diff.lcs_length ~eq (arr a) (arr b) in
      l >= 0
      && l <= min (String.length a) (String.length b)
      && (2 * l) + ed a b = String.length a + String.length b)

let prop_script_cost =
  QCheck.Test.make ~name:"edit script cost equals distance" ~count:200
    (QCheck.pair arb_string arb_string)
    (fun (a, b) ->
      let script = Diff.script ~eq (arr a) (arr b) in
      let cost =
        List.length (List.filter (function Diff.Keep _ -> false | _ -> true) script)
      in
      cost = ed a b)

let prop_script_replays_target =
  QCheck.Test.make ~name:"edit script replays source and target" ~count:200
    (QCheck.pair arb_string arb_string)
    (fun (a, b) ->
      let script = Diff.script ~eq (arr a) (arr b) in
      let to_b =
        List.filter_map
          (function Diff.Keep c | Diff.Insert c -> Some c | Diff.Delete _ -> None)
          script
      in
      let to_a =
        List.filter_map
          (function Diff.Keep c | Diff.Delete c -> Some c | Diff.Insert _ -> None)
          script
      in
      to_b = Array.to_list (arr b) && to_a = Array.to_list (arr a))

let () =
  Alcotest.run "diff"
    [
      ( "examples",
        [
          Alcotest.test_case "known distances" `Quick test_known_distances;
          Alcotest.test_case "lcs" `Quick test_lcs_known;
          Alcotest.test_case "levenshtein" `Quick test_levenshtein_known;
          Alcotest.test_case "script replays" `Quick test_script_replays;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_np_vs_dp; prop_symmetric; prop_zero_iff_equal; prop_bounds;
            prop_triangle; prop_lev_le_ed; prop_lcs_relation; prop_script_cost;
            prop_script_replays_target;
          ] );
    ]
