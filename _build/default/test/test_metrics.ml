(* Tests for Sv_metrics: normalisation, SLOC/LLOC counting, divergence
   primitives, and coverage masking. *)

module N = Sv_metrics.Normalize
module C = Sv_metrics.Counts
module D = Sv_metrics.Divergence
module Cat = Sv_metrics.Catalog
module Tree = Sv_tree.Tree
module Label = Sv_tree.Label

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* --- normalisation --- *)

let test_c_lines_strip_comments () =
  let lines = N.c_lines ~file:"t" "int x; // trailing\n/* block\n   spans */ int y;\n" in
  Alcotest.(check (list string)) "comments gone" [ "int x;"; "int y;" ] lines

let test_c_lines_collapse_whitespace () =
  Alcotest.(check (list string))
    "collapsed" [ "int x = 1;" ]
    (N.c_lines ~file:"t" "  int    x   =  1;  \n")

let test_c_lines_keep_pragmas () =
  let lines = N.c_lines ~file:"t" "#pragma omp parallel for\nfor (;;) { }\n" in
  checkb "pragma kept" true (List.mem "#pragma omp parallel for" lines)

let test_c_lines_drop_blank () =
  checki "blank lines gone" 2 (List.length (N.c_lines ~file:"t" "int x;\n\n\n\nint y;\n"))

let test_f_lines () =
  let lines = N.f_lines ~file:"t" "x = 1 ! note\n! full comment line\ny = 2\n" in
  Alcotest.(check (list string)) "fortran comments gone" [ "x = 1"; "y = 2" ] lines

let test_f_lines_keep_directives () =
  let lines = N.f_lines ~file:"t" "!$omp parallel do\ndo i = 1, n\nend do\n" in
  checkb "sentinel kept" true (List.mem "!$omp parallel do" lines)

let test_pp_lines () =
  let toks =
    (Sv_lang_c.Preproc.run ~resolve:(fun _ -> None) ~defines:[] ~file:"t"
       "#define N 4\nint x = N; int y = 2;\n").Sv_lang_c.Preproc.tokens
  in
  let lines = N.c_lines_of_tokens toks in
  checkb "statement split" true (List.length lines >= 2);
  checkb "macro body expanded" true
    (List.exists (fun l -> String.length l >= 1 && String.contains l '4') lines)

(* --- counts --- *)

let lex src = Sv_lang_c.Token.lex ~file:"t" src

let test_sloc () =
  checki "sloc counts normalised lines" 2 (C.sloc_of_lines (N.c_lines ~file:"t" "int x;\n// c\nint y;\n"))

let test_lloc_for_header_is_one () =
  (* the formatted and one-line variants agree: LLOC is layout-blind *)
  let a = C.lloc_c (lex "for (int i = 0; i < n; i++) { f(i); }") in
  let b = C.lloc_c (lex "for (int i = 0;\n     i < n;\n     i++) {\n  f(i);\n}") in
  checki "layout blind" a b;
  checki "for+call" 2 a

let test_lloc_counts () =
  checki "decl + if + return" 3 (C.lloc_c (lex "int f() { int x = 1; if (x) { return x; } }"));
  checki "pragma counts" 1 (C.lloc_c (lex "#pragma omp barrier\n"))

let test_lloc_f () =
  checki "three statements" 3
    (C.lloc_f (Sv_lang_f.Token.lex ~file:"t" "x = 1\ny = 2\nz = 3\n"));
  checki "directive counts, comment does not" 2
    (C.lloc_f (Sv_lang_f.Token.lex ~file:"t" "!$omp parallel do\n! comment\nx = 1\n"))

(* --- divergence primitives --- *)

let test_source_distance () =
  checki "identical" 0 (D.source_distance [ "a"; "b" ] [ "a"; "b" ]);
  checki "one line changed" 2 (D.source_distance [ "a"; "b" ] [ "a"; "c" ]);
  checki "line added" 1 (D.source_distance [ "a" ] [ "a"; "b" ])

let test_normalised () =
  checkf "zero" 0.0 (D.normalised ~d:0 ~dmax:10);
  checkf "clamped" 1.0 (D.normalised ~d:25 ~dmax:10);
  checkf "ratio" 0.5 (D.normalised ~d:5 ~dmax:10);
  checkf "dmax zero, d zero" 0.0 (D.normalised ~d:0 ~dmax:0);
  checkf "dmax zero, d nonzero" 1.0 (D.normalised ~d:3 ~dmax:0)

let test_tree_distance_labels () =
  let t text = Tree.leaf (Label.v ~text "k") in
  checki "same" 0 (D.tree_distance (t "a") (t "a"));
  checki "text differs" 1 (D.tree_distance (t "a") (t "b"))

let test_mask_tree () =
  let mk line kind =
    Label.v ~loc:(Sv_util.Loc.make ~file:"f" ~line ~col:0) kind
  in
  let tree = Tree.node (mk 1 "root") [ Tree.leaf (mk 2 "live"); Tree.leaf (mk 3 "dead") ] in
  let cov = Sv_util.Coverage.create () in
  Sv_util.Coverage.hit cov ~file:"f" ~line:2;
  let masked = D.mask_tree cov tree in
  checkb "live kept" true (Tree.exists (fun l -> l.Label.kind = "live") masked);
  checkb "dead pruned" false (Tree.exists (fun l -> l.Label.kind = "dead") masked);
  (* the root's own line never executed, but it is an ancestor of live
     code and must survive *)
  checkb "container root kept" true (Tree.exists (fun l -> l.Label.kind = "root") masked)

let test_mask_tree_root_survives () =
  let cov = Sv_util.Coverage.create () in
  Sv_util.Coverage.hit cov ~file:"f" ~line:99;
  let dead_root =
    Tree.leaf (Label.v ~loc:(Sv_util.Loc.make ~file:"f" ~line:1 ~col:0) "root")
  in
  checki "degenerates to root" 1 (Tree.size (D.mask_tree cov dead_root))

(* --- matched decomposition & structure --- *)

let gen_label_tree =
  QCheck.Gen.(
    sized_size (int_bound 10) (fix (fun self n ->
        let lbl = map (fun k -> Label.v ("k" ^ string_of_int k)) (int_bound 4) in
        if n = 0 then map Tree.leaf lbl
        else map2 Tree.node lbl (list_size (int_bound 3) (self (n / 2))))))

let arb_label_tree = QCheck.make gen_label_tree

let prop_matched_upper_bound =
  QCheck.Test.make ~name:"matched decomposition bounds exact TED from above" ~count:200
    (QCheck.pair arb_label_tree arb_label_tree)
    (fun (a, b) -> D.tree_distance_matched a b >= D.tree_distance a b)

let prop_matched_self_zero =
  QCheck.Test.make ~name:"matched decomposition of a tree with itself is 0" ~count:200
    arb_label_tree
    (fun t -> D.tree_distance_matched t t = 0)

let test_structure_coupling () =
  let c =
    Sv_metrics.Structure.coupling_of_deps ~root:"main.cpp"
      [ ("main.cpp", [ "a.h"; "b.h" ]); ("a.h", [ "b.h" ]) ]
  in
  checki "files" 3 c.Sv_metrics.Structure.files;
  checki "edges" 3 c.Sv_metrics.Structure.edges;
  checkb "ratio" true (Float.abs (c.Sv_metrics.Structure.coupling_ratio -. 0.5) < 1e-9)

let test_structure_coupling_isolated () =
  let c = Sv_metrics.Structure.coupling_of_deps ~root:"only.cpp" [ ("only.cpp", []) ] in
  checki "one file" 1 c.Sv_metrics.Structure.files;
  checkb "zero ratio" true (c.Sv_metrics.Structure.coupling_ratio = 0.0)

let test_structure_complexity () =
  let t =
    Tree.node (Label.v "root")
      [ Tree.leaf (Label.v "a"); Tree.node (Label.v "b") [ Tree.leaf (Label.v "a") ] ]
  in
  let c = Sv_metrics.Structure.complexity t in
  checki "size" 4 c.Sv_metrics.Structure.size;
  checki "depth" 3 c.Sv_metrics.Structure.depth;
  checki "leaves" 2 c.Sv_metrics.Structure.leaves;
  checkb "entropy positive" true (c.Sv_metrics.Structure.branching_entropy > 0.0);
  (* a uniform-kind tree has zero entropy *)
  let flat = Tree.node (Label.v "x") [ Tree.leaf (Label.v "x"); Tree.leaf (Label.v "x") ] in
  checkb "uniform entropy zero" true
    (Float.abs (Sv_metrics.Structure.complexity flat).Sv_metrics.Structure.branching_entropy
     < 1e-9)

(* --- catalog --- *)

let test_catalog_table1 () =
  checki "seven rows" 7 (List.length Cat.all);
  let names = List.map (fun (e : Cat.entry) -> e.Cat.name) Cat.all in
  Alcotest.(check (list string)) "paper order"
    [ "SLOC"; "LLOC"; "Source"; "T_src"; "T_sem"; "T_ir"; "Performance" ]
    names;
  let tsem = List.find (fun (e : Cat.entry) -> e.Cat.name = "T_sem") Cat.all in
  checkb "tsem has inlining variant" true (List.mem "+inlining" tsem.Cat.variants)

let () =
  Alcotest.run "metrics"
    [
      ( "normalise",
        [
          Alcotest.test_case "strip comments" `Quick test_c_lines_strip_comments;
          Alcotest.test_case "collapse whitespace" `Quick test_c_lines_collapse_whitespace;
          Alcotest.test_case "keep pragmas" `Quick test_c_lines_keep_pragmas;
          Alcotest.test_case "drop blanks" `Quick test_c_lines_drop_blank;
          Alcotest.test_case "fortran lines" `Quick test_f_lines;
          Alcotest.test_case "fortran directives kept" `Quick test_f_lines_keep_directives;
          Alcotest.test_case "preprocessed lines" `Quick test_pp_lines;
        ] );
      ( "counts",
        [
          Alcotest.test_case "sloc" `Quick test_sloc;
          Alcotest.test_case "lloc layout-blind" `Quick test_lloc_for_header_is_one;
          Alcotest.test_case "lloc counts" `Quick test_lloc_counts;
          Alcotest.test_case "lloc fortran" `Quick test_lloc_f;
        ] );
      ( "divergence",
        [
          Alcotest.test_case "source distance" `Quick test_source_distance;
          Alcotest.test_case "normalisation" `Quick test_normalised;
          Alcotest.test_case "tree labels" `Quick test_tree_distance_labels;
          Alcotest.test_case "coverage mask" `Quick test_mask_tree;
          Alcotest.test_case "mask root survives" `Quick test_mask_tree_root_survives;
        ] );
      ( "structure",
        [
          Alcotest.test_case "coupling" `Quick test_structure_coupling;
          Alcotest.test_case "coupling isolated" `Quick test_structure_coupling_isolated;
          Alcotest.test_case "complexity" `Quick test_structure_complexity;
        ] );
      ( "catalog",
        [ Alcotest.test_case "table 1 contents" `Quick test_catalog_table1 ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_matched_upper_bound; prop_matched_self_zero ] );
    ]
