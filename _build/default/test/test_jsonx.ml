(* Tests for Sv_jsonx: parsing, printing, round-trips, error handling. *)

module J = Sv_jsonx.Jsonx

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let test_parse_scalars () =
  checkb "null" true (J.of_string "null" = J.Null);
  checkb "true" true (J.of_string "true" = J.Bool true);
  checkb "false" true (J.of_string "false" = J.Bool false);
  checkb "int" true (J.of_string "42" = J.Int 42);
  checkb "negative" true (J.of_string "-7" = J.Int (-7));
  checkb "float" true (J.of_string "2.5" = J.Float 2.5);
  checkb "exponent" true (J.of_string "1e3" = J.Float 1000.0);
  checkb "string" true (J.of_string "\"hi\"" = J.String "hi")

let test_parse_structures () =
  checkb "empty list" true (J.of_string "[]" = J.List []);
  checkb "empty obj" true (J.of_string "{}" = J.Obj []);
  checkb "list" true (J.of_string "[1, 2]" = J.List [ J.Int 1; J.Int 2 ]);
  checkb "nested" true
    (J.of_string {|{"a": [1, {"b": null}]}|}
    = J.Obj [ ("a", J.List [ J.Int 1; J.Obj [ ("b", J.Null) ] ]) ])

let test_parse_escapes () =
  checkb "newline" true (J.of_string {|"a\nb"|} = J.String "a\nb");
  checkb "quote" true (J.of_string {|"a\"b"|} = J.String "a\"b");
  checkb "backslash" true (J.of_string {|"a\\b"|} = J.String "a\\b");
  checkb "unicode escape" true (J.of_string {|"\u0041"|} = J.String "A");
  checkb "unicode two-byte" true (J.of_string {|"é"|} = J.String "\xc3\xa9")

let test_parse_errors () =
  let fails s =
    match J.of_string s with
    | exception J.Parse_error _ -> true
    | _ -> false
  in
  checkb "trailing" true (fails "1 2");
  checkb "unterminated string" true (fails "\"abc");
  checkb "unterminated list" true (fails "[1, 2");
  checkb "missing colon" true (fails "{\"a\" 1}");
  checkb "bare word" true (fails "hello")

let test_member_helpers () =
  let v = J.of_string {|{"a": 1, "b": [2], "a": 3}|} in
  checkb "last duplicate wins" true (J.member "a" v = Some (J.Int 3));
  checkb "missing" true (J.member "z" v = None);
  checkb "to_list" true (J.to_list (J.List [ J.Int 1 ]) = [ J.Int 1 ]);
  checkb "to_list non-list" true (J.to_list J.Null = []);
  checkb "string_value" true (J.string_value (J.String "x") = Some "x")

let test_print_escapes () =
  checks "escaped output" {|"a\nb\"c\\"|} (J.to_string (J.String "a\nb\"c\\"));
  checks "control chars" {|"\u0001"|} (J.to_string (J.String "\x01"))

let test_pretty_print () =
  let v = J.Obj [ ("a", J.List [ J.Int 1; J.Int 2 ]) ] in
  let printed = J.to_string ~indent:2 v in
  checkb "has newlines" true (String.contains printed '\n');
  checkb "reparses" true (J.equal v (J.of_string printed))

(* random JSON generator (ASCII strings to keep escaping in scope) *)
let gen_json =
  QCheck.Gen.(
    sized_size (int_bound 4) (fix (fun self n ->
        let scalar =
          oneof
            [
              return J.Null;
              map (fun b -> J.Bool b) bool;
              map (fun i -> J.Int i) (int_range (-1000000) 1000000);
              map (fun s -> J.String s) (string_size ~gen:printable (int_bound 12));
            ]
        in
        if n = 0 then scalar
        else
          oneof
            [
              scalar;
              map (fun xs -> J.List xs) (list_size (int_bound 4) (self (n - 1)));
              map
                (fun kvs -> J.Obj kvs)
                (list_size (int_bound 4)
                   (pair (string_size ~gen:printable (int_bound 8)) (self (n - 1))));
            ])))

let arb_json = QCheck.make ~print:J.to_string gen_json

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse round-trip" ~count:500 arb_json (fun v ->
      J.equal v (J.of_string (J.to_string v)))

let prop_roundtrip_pretty =
  QCheck.Test.make ~name:"pretty print/parse round-trip" ~count:300 arb_json (fun v ->
      J.equal v (J.of_string (J.to_string ~indent:2 v)))

let () =
  Alcotest.run "jsonx"
    [
      ( "parse",
        [
          Alcotest.test_case "scalars" `Quick test_parse_scalars;
          Alcotest.test_case "structures" `Quick test_parse_structures;
          Alcotest.test_case "escapes" `Quick test_parse_escapes;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "member helpers" `Quick test_member_helpers;
        ] );
      ( "print",
        [
          Alcotest.test_case "escapes" `Quick test_print_escapes;
          Alcotest.test_case "pretty" `Quick test_pretty_print;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_roundtrip_pretty ] );
    ]
