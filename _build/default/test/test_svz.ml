(* Tests for Sv_svz: round-trips, compression effectiveness on repetitive
   input, and corruption detection. *)

module Svz = Sv_svz.Svz

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let test_empty () = checks "empty round-trip" "" (Svz.decompress (Svz.compress ""))

let test_simple_roundtrip () =
  let s = "the quick brown fox jumps over the lazy dog" in
  checks "round-trip" s (Svz.decompress (Svz.compress s))

let test_repetitive_compresses () =
  let s = String.concat "" (List.init 200 (fun _ -> "load.f64 store.f64 gep ")) in
  let c = Svz.compress s in
  checkb "smaller than input" true (String.length c < String.length s / 4);
  checks "still round-trips" s (Svz.decompress c)

let test_overlapping_match () =
  (* RLE-style overlapping back-reference: aaaa... *)
  let s = String.make 500 'a' in
  let c = Svz.compress s in
  checkb "rle compresses" true (String.length c < 30);
  checks "rle round-trips" s (Svz.decompress c)

let test_binary_roundtrip () =
  let s = String.init 256 Char.chr in
  checks "all bytes" s (Svz.decompress (Svz.compress s))

let test_corrupt_detection () =
  let fails s =
    match Svz.decompress s with exception Svz.Corrupt _ -> true | _ -> false
  in
  checkb "bad magic" true (fails "XXXX\x00");
  checkb "empty input" true (fails "");
  checkb "truncated" true
    (let c = Svz.compress (String.make 100 'x') in
     fails (String.sub c 0 (String.length c - 3)));
  (* flip a length byte so the declared original length mismatches *)
  let c = Bytes.of_string (Svz.compress "hello world hello world") in
  Bytes.set c 4 '\x7F';
  checkb "length mismatch" true (fails (Bytes.to_string c))

let test_ratio () =
  checkb "empty ratio is 1" true (Svz.ratio "" = 1.0);
  checkb "repetitive ratio < 1" true (Svz.ratio (String.make 1000 'z') < 0.1)

let arb_bytes = QCheck.string_of_size (QCheck.Gen.int_bound 2000)

let prop_roundtrip =
  QCheck.Test.make ~name:"compress/decompress identity" ~count:500 arb_bytes (fun s ->
      Svz.decompress (Svz.compress s) = s)

let prop_roundtrip_repetitive =
  QCheck.Test.make ~name:"identity on repetitive inputs" ~count:200
    QCheck.(pair (string_of_size (Gen.int_bound 30)) small_nat)
    (fun (chunk, reps) ->
      let s = String.concat "" (List.init (reps mod 50) (fun _ -> chunk)) in
      Svz.decompress (Svz.compress s) = s)

(* the format declares its payload length up front, so no strict prefix
   of an artifact can silently decompress — it must raise Corrupt *)
let prop_truncation_corrupt =
  QCheck.Test.make ~name:"every strict prefix raises Corrupt" ~count:300
    QCheck.(pair arb_bytes (int_bound 100_000))
    (fun (s, cut_seed) ->
      let c = Svz.compress s in
      let cut = cut_seed mod String.length c in
      match Svz.decompress (String.sub c 0 cut) with
      | exception Svz.Corrupt _ -> true
      | _ -> false)

let prop_bounded_expansion =
  QCheck.Test.make ~name:"worst-case expansion is bounded" ~count:300 arb_bytes (fun s ->
      String.length (Svz.compress s)
      <= String.length s + (String.length s / 64) + 32)

let () =
  Alcotest.run "svz"
    [
      ( "examples",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "simple" `Quick test_simple_roundtrip;
          Alcotest.test_case "repetitive compresses" `Quick test_repetitive_compresses;
          Alcotest.test_case "overlapping match" `Quick test_overlapping_match;
          Alcotest.test_case "binary" `Quick test_binary_roundtrip;
          Alcotest.test_case "corruption" `Quick test_corrupt_detection;
          Alcotest.test_case "ratio" `Quick test_ratio;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_roundtrip_repetitive; prop_truncation_corrupt;
            prop_bounded_expansion ] );
    ]
