(* Tests for Sv_report: structural checks on the text renderers. *)

module R = Sv_report.Report
module C = Sv_cluster.Cluster
module X = Sv_util.Xstring

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_table_alignment () =
  let out =
    R.table ~headers:[ "model"; "value" ]
      ~rows:[ [ "serial"; "1" ]; [ "a-much-longer-name"; "23" ] ]
  in
  let widths = List.map X.display_width (X.lines out) in
  checkb "all lines same width" true
    (match widths with [] -> false | w :: rest -> List.for_all (( = ) w) rest);
  checkb "contains cells" true (contains out "a-much-longer-name")

let test_table_ragged_rows () =
  let out = R.table ~headers:[ "a"; "b"; "c" ] ~rows:[ [ "x" ]; [ "1"; "2"; "3" ] ] in
  checkb "short rows padded" true (contains out "x")

let test_heatmap_values () =
  let out =
    R.heatmap ~row_labels:[ "r1" ] ~col_labels:[ "c1"; "c2" ] [| [| 0.0; 1.0 |] |]
  in
  checkb "low value" true (contains out "0.00");
  checkb "high value" true (contains out "1.00");
  checkb "high shade" true (contains out "█")

let test_heatmap_nan () =
  let out = R.heatmap ~row_labels:[ "r" ] ~col_labels:[ "c" ] [| [| Float.nan |] |] in
  checkb "nan placeholder" true (contains out "--")

let test_dendrogram_contains_labels () =
  let d = C.Merge (C.Leaf 0, C.Merge (C.Leaf 1, C.Leaf 2, 0.5), 1.25) in
  let out = R.dendrogram ~labels:[| "alpha"; "beta"; "gamma" |] d in
  List.iter (fun l -> checkb l true (contains out l)) [ "alpha"; "beta"; "gamma" ];
  checkb "heights shown" true (contains out "1.250");
  checkb "junction glyph" true (contains out "┤")

let test_bars () =
  let out = R.bars [ ("full", 2.0); ("half", 1.0); ("zero", 0.0) ] in
  checkb "labels present" true (contains out "half");
  checkb "value shown" true (contains out "2.000");
  let lines = X.lines out in
  checki "three bars" 3 (List.length lines)

let test_sparkline () =
  let s = R.sparkline [ 0.0; 0.5; 1.0 ] in
  checki "three glyphs" 3 (X.display_width s);
  checkb "max block" true (contains s "█");
  checkb "min block" true (contains s "▁")

let test_scatter_bounds () =
  let out =
    R.scatter ~width:20 ~height:5 ~xlabel:"x" ~ylabel:"y"
      [ (0.0, 0.0, 'A'); (1.0, 1.0, 'B'); (0.5, 0.5, 'C'); (2.0, -1.0, 'D') ]
  in
  List.iter (fun m -> checkb (String.make 1 m) true (contains out (String.make 1 m)))
    [ 'A'; 'B'; 'C'; 'D' ];
  checkb "axis labels" true (contains out "x" && contains out "y")

let test_scatter_collision () =
  let out =
    R.scatter ~width:10 ~height:3 ~xlabel:"x" ~ylabel:"y"
      [ (0.5, 0.5, 'F'); (0.5, 0.5, 'S') ]
  in
  checkb "first wins" true (contains out "F");
  checkb "second dropped" false (contains out "S")

let test_cascade_render () =
  let series =
    Sv_perf.Cascade.cascade ~app:Sv_perf.Pmodel.tealeaf
      ~models:Sv_perf.Pmodel.all_parallel ~platforms:Sv_perf.Platform.all
  in
  let out = R.cascade series in
  checkb "has header" true (contains out "Phi");
  checkb "has model" true (contains out "Kokkos");
  checkb "has platform order" true (contains out "H100")

let () =
  Alcotest.run "report"
    [
      ( "renderers",
        [
          Alcotest.test_case "table alignment" `Quick test_table_alignment;
          Alcotest.test_case "table ragged rows" `Quick test_table_ragged_rows;
          Alcotest.test_case "heatmap values" `Quick test_heatmap_values;
          Alcotest.test_case "heatmap nan" `Quick test_heatmap_nan;
          Alcotest.test_case "dendrogram" `Quick test_dendrogram_contains_labels;
          Alcotest.test_case "bars" `Quick test_bars;
          Alcotest.test_case "sparkline" `Quick test_sparkline;
          Alcotest.test_case "scatter" `Quick test_scatter_bounds;
          Alcotest.test_case "scatter collision" `Quick test_scatter_collision;
          Alcotest.test_case "cascade" `Quick test_cascade_render;
        ] );
    ]
