(* Tests for Sv_corpus: the emitted mini-app ports are complete, parse,
   carry the idioms their models require, and differ from each other in
   the expected directions. *)

module Emit = Sv_corpus.Emit

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let source (cb : Emit.codebase) = List.assoc cb.Emit.main_file cb.Emit.files

let apps =
  [
    ("babelstream", Sv_corpus.Babelstream.all ());
    ("tealeaf", Sv_corpus.Tealeaf.all ());
    ("cloverleaf", Sv_corpus.Cloverleaf.all ());
    ("minibude", Sv_corpus.Minibude.all ());
  ]

let test_model_coverage () =
  List.iter
    (fun (name, cbs) ->
      checki (name ^ " has 10 models") 10 (List.length cbs);
      Alcotest.(check (list string))
        (name ^ " model order") Emit.all_ids
        (List.map (fun (cb : Emit.codebase) -> cb.Emit.model) cbs))
    apps;
  checki "fortran has 8 models" 8 (List.length (Sv_corpus.Babelstream_f.all ()))

let test_every_port_parses () =
  List.iter
    (fun (_, cbs) ->
      List.iter
        (fun (cb : Emit.codebase) ->
          let resolve n = List.assoc_opt n cb.Emit.files in
          let pp =
            Sv_lang_c.Preproc.run ~resolve ~defines:[] ~file:cb.Emit.main_file (source cb)
          in
          Alcotest.(check (list string))
            (cb.Emit.app ^ "/" ^ cb.Emit.model ^ " resolves all includes")
            [] pp.Sv_lang_c.Preproc.missing;
          ignore
            (Sv_lang_c.Parser.parse_tokens ~file:cb.Emit.main_file
               pp.Sv_lang_c.Preproc.tokens))
        cbs)
    apps

let find app model =
  List.find (fun (cb : Emit.codebase) -> cb.Emit.model = model) (List.assoc app apps)

let test_model_idioms () =
  let has app model needle = contains (source (find app model)) needle in
  checkb "serial has no pragmas" false (has "babelstream" "serial" "#pragma");
  checkb "omp uses parallel for" true (has "tealeaf" "omp" "#pragma omp parallel for");
  checkb "omp-target maps data" true
    (has "tealeaf" "omp-target" "#pragma omp target enter data");
  checkb "cuda launches kernels" true (has "tealeaf" "cuda" "<<<");
  checkb "cuda kernels are __global__" true (has "tealeaf" "cuda" "__global__");
  checkb "hip uses hip runtime" true (has "tealeaf" "hip" "hipMalloc");
  checkb "hip does not use cuda runtime" false (has "tealeaf" "hip" "cudaMalloc");
  checkb "sycl-usm uses malloc_shared" true (has "tealeaf" "sycl-usm" "sycl::malloc_shared");
  checkb "sycl-acc uses buffers" true (has "tealeaf" "sycl-acc" "sycl::buffer");
  checkb "sycl-acc uses accessors" true (has "tealeaf" "sycl-acc" "get_access");
  checkb "kokkos uses views" true (has "tealeaf" "kokkos" "Kokkos::View");
  checkb "kokkos lambda macro" true (has "tealeaf" "kokkos" "KOKKOS_LAMBDA");
  checkb "tbb uses blocked_range" true (has "tealeaf" "tbb" "tbb::blocked_range");
  checkb "stdpar uses execution policies" true
    (has "tealeaf" "stdpar" "std::execution::par_unseq")

let test_shims_attached () =
  let deps model = List.map fst (find "babelstream" model).Emit.files in
  checkb "sycl port ships sycl.h" true (List.mem "sycl.h" (deps "sycl-usm"));
  checkb "kokkos port ships kokkos.h" true (List.mem "kokkos.h" (deps "kokkos"));
  checkb "serial has only system headers" true
    (List.sort compare (deps "serial")
    = List.sort compare
        ((find "babelstream" "serial").Emit.main_file :: Sv_corpus.Shim.system_names))

let test_system_headers_everywhere () =
  List.iter
    (fun (_, cbs) ->
      List.iter
        (fun (cb : Emit.codebase) ->
          List.iter
            (fun h ->
              checkb (cb.Emit.model ^ " ships " ^ h) true
                (List.mem_assoc h cb.Emit.files))
            cb.Emit.system_headers)
        cbs)
    apps

let test_shared_algorithm_lines () =
  (* ports share the algorithm: serial and omp differ only by scaffolding *)
  let lines model =
    Sv_metrics.Normalize.c_lines ~file:"t" (source (find "babelstream" model))
  in
  let serial = lines "serial" and omp = lines "omp" in
  let shared = List.filter (fun l -> List.mem l omp) serial in
  checkb "most serial lines survive in the omp port" true
    (List.length shared * 10 > List.length serial * 8)

let test_fortran_models () =
  let src model =
    let cb =
      List.find
        (fun (c : Emit.codebase) -> c.Emit.model = model)
        (Sv_corpus.Babelstream_f.all ())
    in
    List.assoc cb.Emit.main_file cb.Emit.files
  in
  checkb "sequential uses do loops" true (contains (src "sequential") "do i = 1, n");
  checkb "array uses slices" true (contains (src "array") "c(:) = a(:)");
  checkb "array avoids do loops for kernels" false (contains (src "array") "do i = 1, n");
  checkb "doconcurrent" true (contains (src "doconcurrent") "do concurrent (i = 1:n)");
  checkb "omp sentinel" true (contains (src "omp") "!$omp parallel do");
  checkb "taskloop nesting" true (contains (src "omp-taskloop") "!$omp taskloop");
  checkb "target maps" true (contains (src "omp-target") "!$omp target enter data");
  checkb "acc loop" true (contains (src "acc") "!$acc parallel loop");
  checkb "acc-array kernels" true (contains (src "acc-array") "!$acc kernels")

let test_raja_extension_ports () =
  List.iter
    (fun codebase_of ->
      match codebase_of ~model:"raja" with
      | None -> Alcotest.fail "raja port missing"
      | Some (cb : Emit.codebase) ->
          checkb (cb.Emit.app ^ "/raja uses forall") true
            (contains (source cb) "RAJA::forall");
          (* miniBUDE has no reductions; CloverLeaf's live in the summary unit *)
          checkb (cb.Emit.app ^ "/raja uses reducers") true
            (contains (source cb) "RAJA::ReduceSum"
            || List.mem cb.Emit.app [ "cloverleaf"; "minibude" ]);
          let resolve n = List.assoc_opt n cb.Emit.files in
          let pp =
            Sv_lang_c.Preproc.run ~resolve ~defines:[] ~file:cb.Emit.main_file (source cb)
          in
          ignore
            (Sv_lang_c.Parser.parse_tokens ~file:cb.Emit.main_file
               pp.Sv_lang_c.Preproc.tokens))
    [
      Sv_corpus.Babelstream.codebase;
      Sv_corpus.Tealeaf.codebase;
      Sv_corpus.Minibude.codebase;
    ]

let test_cloverleaf_multi_unit () =
  List.iter
    (fun (cb : Emit.codebase) ->
      Alcotest.(check int) (cb.Emit.model ^ " has a summary unit") 1
        (List.length cb.Emit.extra_units);
      checkb "summary unit ships in files" true
        (List.for_all (fun u -> List.mem_assoc u cb.Emit.files) cb.Emit.extra_units))
    (Sv_corpus.Cloverleaf.all ())

let test_minibude_is_compute_shaped () =
  (* the docking kernel has a nested pair loop; BabelStream does not *)
  checkb "nested loops in bude" true
    (contains (source (find "minibude" "serial")) "for (int p = 0; p < natpro; p++)");
  checkb "stream kernels are flat" false
    (contains (source (find "babelstream" "serial")) "for (int p = 0")

let test_gen_lookup () =
  checkb "unknown model" true (Emit.gen_for "fortress" = None);
  checkb "raja is an extension model" true
    (List.mem "raja" Emit.extended_ids && not (List.mem "raja" Emit.all_ids));
  checkb "raja generator resolves" true (Emit.gen_for "raja" <> None);
  checkb "known model" true
    (match Emit.gen_for "kokkos" with
    | Some g -> Emit.model_name g = "Kokkos"
    | None -> false);
  checkb "babelstream unknown model" true
    (Sv_corpus.Babelstream.codebase ~model:"fortress" = None)

let () =
  Alcotest.run "corpus"
    [
      ( "inventory",
        [
          Alcotest.test_case "model coverage" `Quick test_model_coverage;
          Alcotest.test_case "gen lookup" `Quick test_gen_lookup;
          Alcotest.test_case "shims attached" `Quick test_shims_attached;
          Alcotest.test_case "system headers" `Quick test_system_headers_everywhere;
        ] );
      ( "content",
        [
          Alcotest.test_case "every port parses" `Quick test_every_port_parses;
          Alcotest.test_case "model idioms" `Quick test_model_idioms;
          Alcotest.test_case "shared algorithm" `Quick test_shared_algorithm_lines;
          Alcotest.test_case "fortran models" `Quick test_fortran_models;
          Alcotest.test_case "minibude compute shape" `Quick test_minibude_is_compute_shaped;
          Alcotest.test_case "raja extension ports" `Quick test_raja_extension_ports;
          Alcotest.test_case "cloverleaf multi-unit" `Quick test_cloverleaf_multi_unit;
        ] );
    ]
