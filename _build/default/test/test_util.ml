(* Unit and property tests for Sv_util: PRNG, strings, locations,
   coverage, directive syntax. *)

module Prng = Sv_util.Prng
module Xstring = Sv_util.Xstring
module Loc = Sv_util.Loc
module Coverage = Sv_util.Coverage
module Dsyn = Sv_util.Directive_syntax

let check = Alcotest.(check int)
let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)

(* --- prng --- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_differs () =
  let a = Prng.create 1 and b = Prng.create 2 in
  checkb "different seeds give different first draw" true
    (Prng.next_int64 a <> Prng.next_int64 b)

let test_prng_int_bounds () =
  let t = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int t 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done

let test_prng_range () =
  let t = Prng.create 7 in
  for _ = 1 to 500 do
    let v = Prng.range t 5 9 in
    checkb "inclusive range" true (v >= 5 && v <= 9)
  done

let test_prng_float () =
  let t = Prng.create 3 in
  for _ = 1 to 500 do
    let v = Prng.float t 2.5 in
    checkb "float range" true (v >= 0.0 && v < 2.5)
  done

let test_prng_copy_independent () =
  let a = Prng.create 9 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  let va = Prng.next_int64 a in
  let vb = Prng.next_int64 b in
  Alcotest.(check int64) "copy continues identically" va vb

let test_prng_shuffle_is_permutation () =
  let t = Prng.create 11 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_prng_gaussian_moments () =
  let t = Prng.create 13 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.gaussian t ~mean:5.0 ~stddev:2.0
  done;
  let mean = !sum /. float_of_int n in
  checkb "mean close to 5" true (Float.abs (mean -. 5.0) < 0.1)

let test_prng_pick () =
  let t = Prng.create 17 in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 100 do
    checkb "picked element" true (Array.mem (Prng.pick t a) a)
  done

(* --- xstring --- *)

let test_lines () =
  Alcotest.(check (list string)) "basic" [ "a"; "b" ] (Xstring.lines "a\nb");
  Alcotest.(check (list string)) "trailing newline" [ "a"; "b" ] (Xstring.lines "a\nb\n");
  Alcotest.(check (list string)) "empty" [] (Xstring.lines "");
  Alcotest.(check (list string)) "inner empty kept" [ "a"; ""; "b" ] (Xstring.lines "a\n\nb")

let test_collapse_spaces () =
  checks "runs collapse" "a b c" (Xstring.collapse_spaces "a   b\t\tc");
  checks "leading collapse" " a" (Xstring.collapse_spaces "   a");
  checks "idempotent" "a b" (Xstring.collapse_spaces (Xstring.collapse_spaces "a    b"))

let test_is_blank () =
  checkb "spaces" true (Xstring.is_blank "  \t ");
  checkb "empty" true (Xstring.is_blank "");
  checkb "text" false (Xstring.is_blank " x ")

let test_pad_and_width () =
  check "ascii width" 3 (Xstring.display_width "abc");
  check "unicode width" 1 (Xstring.display_width "█");
  checks "pads to width" "ab  " (Xstring.pad 4 "ab");
  checks "wide unchanged" "abcdef" (Xstring.pad 3 "abcdef")

let test_repeat () =
  checks "repeat" "ababab" (Xstring.repeat "ab" 3);
  checks "zero" "" (Xstring.repeat "ab" 0)

let test_common_prefix () =
  check "shared" 3 (Xstring.common_prefix_len "abcx" "abcy");
  check "none" 0 (Xstring.common_prefix_len "x" "y");
  check "full" 2 (Xstring.common_prefix_len "ab" "ab")

let test_starts_with () =
  checkb "yes" true (Xstring.starts_with ~prefix:"#pragma" "#pragma omp");
  checkb "no" false (Xstring.starts_with ~prefix:"#pragma" "#prag")

(* --- loc --- *)

let mkloc f l1 c1 l2 c2 =
  { Loc.file = f; start = { Loc.line = l1; col = c1 }; stop = { Loc.line = l2; col = c2 } }

let test_loc_span () =
  let a = mkloc "f" 1 4 1 9 and b = mkloc "f" 3 0 4 2 in
  let s = Loc.span a b in
  check "start line" 1 s.Loc.start.Loc.line;
  check "stop line" 4 s.Loc.stop.Loc.line

let test_loc_span_none () =
  let a = mkloc "f" 2 0 2 5 in
  checkb "span with none keeps a" true (Loc.span a Loc.none = a);
  checkb "span with none keeps b" true (Loc.span Loc.none a = a)

let test_loc_lines_covered () =
  Alcotest.(check (list int)) "multi-line" [ 2; 3; 4 ] (Loc.lines_covered (mkloc "f" 2 0 4 1));
  Alcotest.(check (list int)) "none" [] (Loc.lines_covered Loc.none)

let test_loc_compare_order () =
  let a = mkloc "a" 1 0 1 0 and b = mkloc "b" 1 0 1 0 in
  checkb "file order" true (Loc.compare a b < 0);
  let c = mkloc "a" 2 0 2 0 in
  checkb "line order" true (Loc.compare a c < 0);
  check "reflexive" 0 (Loc.compare a a)

let test_loc_pp () =
  checks "single line" "f:3:7" (Loc.to_string (mkloc "f" 3 7 3 9));
  checks "multi line" "f:3-5" (Loc.to_string (mkloc "f" 3 0 5 2))

(* --- coverage --- *)

let test_coverage_basics () =
  let c = Coverage.create () in
  checkb "empty" false (Coverage.covered c ~file:"f" ~line:3);
  Coverage.hit c ~file:"f" ~line:3;
  Coverage.hit c ~file:"f" ~line:3;
  checkb "covered" true (Coverage.covered c ~file:"f" ~line:3);
  check "count" 2 (Coverage.count c ~file:"f" ~line:3);
  Alcotest.(check (list string)) "files" [ "f" ] (Coverage.files c);
  Alcotest.(check (list int)) "lines" [ 3 ] (Coverage.lines_hit c ~file:"f")

let test_coverage_merge () =
  let a = Coverage.create () and b = Coverage.create () in
  Coverage.hit a ~file:"f" ~line:1;
  Coverage.hit b ~file:"f" ~line:1;
  Coverage.hit b ~file:"g" ~line:2;
  let m = Coverage.merge a b in
  check "summed count" 2 (Coverage.count m ~file:"f" ~line:1);
  checkb "other file" true (Coverage.covered m ~file:"g" ~line:2)

let test_coverage_keep_loc () =
  let c = Coverage.create () in
  Coverage.hit c ~file:"f" ~line:5;
  checkb "synthesised kept" true (Coverage.keep_loc c Loc.none);
  checkb "unprofiled file masked (gcov zero-count)" false
    (Coverage.keep_loc c (mkloc "other" 1 0 1 0));
  checkb "hit line kept" true (Coverage.keep_loc c (mkloc "f" 4 0 6 0));
  checkb "dead line dropped" false (Coverage.keep_loc c (mkloc "f" 7 0 9 0))

(* --- directive syntax --- *)

let test_split_plain_words () =
  Alcotest.(check (list (pair string (option string))))
    "words" [ ("parallel", None); ("for", None) ]
    (Dsyn.split "parallel for")

let test_split_with_args () =
  Alcotest.(check (list (pair string (option string))))
    "clause args"
    [ ("target", None); ("map", Some "(tofrom: a)"); ("reduction", Some "(+:sum)") ]
    (Dsyn.split "target map(tofrom: a) reduction(+:sum)")

let test_split_nested_parens () =
  Alcotest.(check (list (pair string (option string))))
    "nested" [ ("if", Some "(f(x, y))") ]
    (Dsyn.split "if(f(x, y))")

let test_sentinel_forms () =
  let origin = function `Omp -> "omp" | `Acc -> "acc" in
  let got s = Option.map (fun (o, b) -> (origin o, b)) (Dsyn.strip_sentinel s) in
  Alcotest.(check (option (pair string string)))
    "pragma omp" (Some ("omp", "parallel for")) (got "#pragma omp parallel for");
  Alcotest.(check (option (pair string string)))
    "pragma acc" (Some ("acc", "kernels")) (got "#pragma acc kernels");
  Alcotest.(check (option (pair string string)))
    "fortran omp" (Some ("omp", "parallel do")) (got "!$omp parallel do");
  Alcotest.(check (option (pair string string)))
    "fortran acc" (Some ("acc", "parallel loop")) (got "!$acc parallel loop");
  Alcotest.(check (option (pair string string))) "not a directive" None (got "int x = 1;")

(* --- properties --- *)

let prop_collapse_idempotent =
  QCheck.Test.make ~name:"collapse_spaces idempotent" ~count:500
    QCheck.(string_of_size (Gen.int_bound 80))
    (fun s -> Xstring.collapse_spaces (Xstring.collapse_spaces s) = Xstring.collapse_spaces s)

let prop_lines_concat =
  QCheck.Test.make ~name:"lines preserves content (no trailing nl)" ~count:500
    QCheck.(list_of_size (Gen.int_bound 10) (string_of_size (Gen.int_bound 10)))
    (fun parts ->
      let parts = List.map (String.map (fun c -> if c = '\n' then '.' else c)) parts in
      (* a trailing empty part is indistinguishable from a final newline,
         which [lines] deliberately absorbs *)
      QCheck.assume
        (match List.rev parts with "" :: _ -> false | _ -> true);
      let s = String.concat "\n" parts in
      Xstring.lines s = if s = "" then [] else parts)

let prop_split_no_empty_words =
  QCheck.Test.make ~name:"directive split yields no empty words" ~count:500
    QCheck.(string_of_size (Gen.int_bound 40))
    (fun s ->
      let s = String.map (fun c -> if c = '\n' then ' ' else c) s in
      List.for_all (fun (w, _) -> w <> "") (Dsyn.split s))

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seed_differs;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "range bounds" `Quick test_prng_range;
          Alcotest.test_case "float bounds" `Quick test_prng_float;
          Alcotest.test_case "copy independent" `Quick test_prng_copy_independent;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_is_permutation;
          Alcotest.test_case "gaussian mean" `Slow test_prng_gaussian_moments;
          Alcotest.test_case "pick membership" `Quick test_prng_pick;
        ] );
      ( "xstring",
        [
          Alcotest.test_case "lines" `Quick test_lines;
          Alcotest.test_case "collapse spaces" `Quick test_collapse_spaces;
          Alcotest.test_case "is_blank" `Quick test_is_blank;
          Alcotest.test_case "pad/width" `Quick test_pad_and_width;
          Alcotest.test_case "repeat" `Quick test_repeat;
          Alcotest.test_case "common prefix" `Quick test_common_prefix;
          Alcotest.test_case "starts_with" `Quick test_starts_with;
        ] );
      ( "loc",
        [
          Alcotest.test_case "span" `Quick test_loc_span;
          Alcotest.test_case "span with none" `Quick test_loc_span_none;
          Alcotest.test_case "lines covered" `Quick test_loc_lines_covered;
          Alcotest.test_case "compare order" `Quick test_loc_compare_order;
          Alcotest.test_case "pretty printing" `Quick test_loc_pp;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "hit/count/files" `Quick test_coverage_basics;
          Alcotest.test_case "merge" `Quick test_coverage_merge;
          Alcotest.test_case "keep_loc mask" `Quick test_coverage_keep_loc;
        ] );
      ( "directive-syntax",
        [
          Alcotest.test_case "plain words" `Quick test_split_plain_words;
          Alcotest.test_case "clause args" `Quick test_split_with_args;
          Alcotest.test_case "nested parens" `Quick test_split_nested_parens;
          Alcotest.test_case "sentinel forms" `Quick test_sentinel_forms;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_collapse_idempotent; prop_lines_concat; prop_split_no_empty_words ] );
    ]
