(* Tests for Sv_ir: well-formedness validation, tree projection, and the
   lowering passes from both frontends (including the offload
   boilerplate the paper's T_ir observations hinge on). *)

module Ir = Sv_ir.Ir
module Tree = Sv_tree.Tree
module Label = Sv_tree.Label

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let noloc = Sv_util.Loc.none
let ins i = { Ir.i; iloc = noloc }

let fn ?(kind = Ir.Host) ?(params = []) name blocks =
  { Ir.fn_name = name; fn_kind = kind; fn_linkage = Ir.Internal; fn_ret = Ir.Void;
    fn_params = params; fn_blocks = blocks }

let modul funcs = { Ir.m_file = "m"; m_globals = []; m_funcs = funcs }

(* --- validation --- *)

let test_validate_ok () =
  let f =
    fn "f" ~params:[ Ir.I32 ]
      [
        { Ir.b_id = 0;
          b_instrs = [ ins (Ir.Bin (1, "add", Ir.I32, Ir.Reg 0, Ir.ImmI 1)) ];
          b_term = Ir.Ret (Some (Ir.I32, Ir.Reg 1)) };
      ]
  in
  checkb "valid" true (Result.is_ok (Ir.validate (modul [ f ])))

let test_validate_missing_block () =
  let f = fn "f" [ { Ir.b_id = 0; b_instrs = []; b_term = Ir.Br 7 } ] in
  checkb "missing branch target" true (Result.is_error (Ir.validate (modul [ f ])))

let test_validate_duplicate_block () =
  let f =
    fn "f"
      [
        { Ir.b_id = 0; b_instrs = []; b_term = Ir.Ret None };
        { Ir.b_id = 0; b_instrs = []; b_term = Ir.Ret None };
      ]
  in
  checkb "duplicate ids" true (Result.is_error (Ir.validate (modul [ f ])))

let test_validate_undefined_register () =
  let f =
    fn "f"
      [
        { Ir.b_id = 0;
          b_instrs = [ ins (Ir.Bin (1, "add", Ir.I32, Ir.Reg 9, Ir.ImmI 1)) ];
          b_term = Ir.Ret None };
      ]
  in
  checkb "undefined register" true (Result.is_error (Ir.validate (modul [ f ])))

let test_validate_empty_internal () =
  let f = fn "f" [] in
  checkb "empty internal body" true (Result.is_error (Ir.validate (modul [ f ])));
  let proto = { f with Ir.fn_linkage = Ir.External } in
  checkb "external prototype fine" true (Result.is_ok (Ir.validate (modul [ proto ])))

(* --- naming and trees --- *)

let test_instr_kinds () =
  checks "typed binop" "add.f64" (Ir.instr_kind (Ir.Bin (0, "add", Ir.F64, Ir.Undef, Ir.Undef)));
  checks "typed cmp" "cmp-lt.i32" (Ir.instr_kind (Ir.Cmp (0, "lt", Ir.I32, Ir.Undef, Ir.Undef)));
  checks "load" "load.f64" (Ir.instr_kind (Ir.Load (0, Ir.F64, Ir.Undef)));
  checks "call" "call" (Ir.instr_kind (Ir.CallI (None, Ir.Void, Ir.Undef, [])))

let test_tree_projection () =
  let f =
    fn "f" ~kind:Ir.Device
      [
        { Ir.b_id = 0;
          b_instrs = [ ins (Ir.CallI (None, Ir.Void, Ir.Glob "g", [ Ir.ImmI 3 ])) ];
          b_term = Ir.Ret None };
      ]
  in
  let t = Ir.to_tree (modul [ f ]) in
  checkb "device function label" true
    (Tree.exists (fun (l : Label.t) -> l.Label.kind = "ir-device-function") t);
  checkb "immediate kept" true
    (Tree.exists (fun (l : Label.t) -> l.Label.kind = "imm-int" && l.Label.text = "3") t);
  checkb "global ref anonymised" true
    (Tree.exists (fun (l : Label.t) -> l.Label.kind = "global-ref" && l.Label.text = "") t)

(* --- lowering: whole corpus validates --- *)

let lower_c (cb : Sv_corpus.Emit.codebase) =
  let resolve name = List.assoc_opt name cb.Sv_corpus.Emit.files in
  let src = List.assoc cb.Sv_corpus.Emit.main_file cb.Sv_corpus.Emit.files in
  let pp =
    Sv_lang_c.Preproc.run ~resolve ~defines:[] ~file:cb.Sv_corpus.Emit.main_file src
  in
  let u = Sv_lang_c.Parser.parse_tokens ~file:cb.Sv_corpus.Emit.main_file pp.Sv_lang_c.Preproc.tokens in
  Sv_lang_c.Lower.lower ~file:cb.Sv_corpus.Emit.main_file [ u ]

let test_corpus_c_validates () =
  List.iter
    (fun cb ->
      match Ir.validate (lower_c cb) with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "%s/%s: %s" cb.Sv_corpus.Emit.app cb.Sv_corpus.Emit.model e)
    (Sv_corpus.Babelstream.all () @ Sv_corpus.Tealeaf.all ()
    @ Sv_corpus.Cloverleaf.all () @ Sv_corpus.Minibude.all ())

let test_corpus_f_validates () =
  List.iter
    (fun (cb : Sv_corpus.Emit.codebase) ->
      let src = List.assoc cb.Sv_corpus.Emit.main_file cb.Sv_corpus.Emit.files in
      let f = Sv_lang_f.Parser.parse ~file:cb.Sv_corpus.Emit.main_file src in
      match Ir.validate (Sv_lang_f.Lower.lower ~file:cb.Sv_corpus.Emit.main_file f) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" cb.Sv_corpus.Emit.model e)
    (Sv_corpus.Babelstream_f.all ())

let stub_count m =
  List.length (List.filter (fun f -> f.Ir.fn_kind = Ir.RuntimeStub) m.Ir.m_funcs)

let device_count m =
  List.length (List.filter (fun f -> f.Ir.fn_kind = Ir.Device) m.Ir.m_funcs)

let find_cb app model =
  let all =
    match app with
    | "babelstream" -> Sv_corpus.Babelstream.all ()
    | "tealeaf" -> Sv_corpus.Tealeaf.all ()
    | _ -> invalid_arg "find_cb"
  in
  List.find (fun (cb : Sv_corpus.Emit.codebase) -> cb.Sv_corpus.Emit.model = model) all

let test_offload_boilerplate () =
  let cuda = lower_c (find_cb "babelstream" "cuda") in
  checkb "cuda gets registration stubs" true (stub_count cuda >= 3);
  checkb "cuda has device kernels" true (device_count cuda >= 5);
  let serial = lower_c (find_cb "babelstream" "serial") in
  checki "serial has no stubs" 0 (stub_count serial);
  checki "serial has no device code" 0 (device_count serial);
  let omp = lower_c (find_cb "babelstream" "omp") in
  checki "host omp has no stubs" 0 (stub_count omp);
  let target = lower_c (find_cb "babelstream" "omp-target") in
  checkb "omp target outlines device regions" true (device_count target >= 5)

let test_omp_outlining () =
  let omp = lower_c (find_cb "babelstream" "omp") in
  let outlined =
    List.filter
      (fun f ->
        Sv_util.Xstring.starts_with ~prefix:".omp_outlined" f.Ir.fn_name)
      omp.Ir.m_funcs
  in
  checkb "parallel regions outlined" true (List.length outlined >= 5)

let test_fortran_acc_stays_serial () =
  (* §V-B: GCC OpenACC introduces no parallel structure *)
  let lower_f model =
    let cb =
      List.find
        (fun (c : Sv_corpus.Emit.codebase) -> c.Sv_corpus.Emit.model = model)
        (Sv_corpus.Babelstream_f.all ())
    in
    let src = List.assoc cb.Sv_corpus.Emit.main_file cb.Sv_corpus.Emit.files in
    Sv_lang_f.Lower.lower ~file:"t"
      (Sv_lang_f.Parser.parse ~file:cb.Sv_corpus.Emit.main_file src)
  in
  let acc = lower_f "acc" in
  checki "acc: one host function, nothing outlined" 1 (List.length acc.Ir.m_funcs);
  let omp = lower_f "omp" in
  checkb "omp: fork-called outlined functions" true (List.length omp.Ir.m_funcs > 1)

let test_pp_listing () =
  let m = lower_c (find_cb "babelstream" "serial") in
  let listing = Format.asprintf "%a" Ir.pp m in
  checkb "listing mentions main" true
    (List.exists
       (fun l -> Sv_util.Xstring.starts_with ~prefix:"define" l && String.length l > 0)
       (Sv_util.Xstring.lines listing))

let () =
  Alcotest.run "ir"
    [
      ( "validate",
        [
          Alcotest.test_case "well-formed module" `Quick test_validate_ok;
          Alcotest.test_case "missing block" `Quick test_validate_missing_block;
          Alcotest.test_case "duplicate block" `Quick test_validate_duplicate_block;
          Alcotest.test_case "undefined register" `Quick test_validate_undefined_register;
          Alcotest.test_case "empty internal function" `Quick test_validate_empty_internal;
        ] );
      ( "naming",
        [
          Alcotest.test_case "instruction kinds" `Quick test_instr_kinds;
          Alcotest.test_case "tree projection" `Quick test_tree_projection;
          Alcotest.test_case "listing" `Quick test_pp_listing;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "C corpus validates" `Slow test_corpus_c_validates;
          Alcotest.test_case "Fortran corpus validates" `Quick test_corpus_f_validates;
          Alcotest.test_case "offload boilerplate" `Quick test_offload_boilerplate;
          Alcotest.test_case "omp outlining" `Quick test_omp_outlining;
          Alcotest.test_case "fortran acc stays serial" `Quick test_fortran_acc_stays_serial;
        ] );
    ]
