(* Tests for Sv_interp: expression/statement semantics, dialect builtins,
   coverage recording, error handling, and the full-corpus verification
   runs (the mini-apps' built-in checks). *)

module Ic = Sv_interp.Interp_c
module If_ = Sv_interp.Interp_f
module Coverage = Sv_util.Coverage

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let run_c ?max_steps src =
  Ic.run ?max_steps [ Sv_lang_c.Parser.parse ~file:"t.cpp" src ]

let result_int src =
  match (run_c src).Ic.result with
  | Ok (Ic.VInt n) -> n
  | Ok v -> Alcotest.failf "expected int, got %s" (Format.asprintf "%a" Ic.pp_value v)
  | Error e -> Alcotest.failf "runtime error: %s" e

let main body = Printf.sprintf "int main() { %s }" body

(* --- expressions and statements --- *)

let test_arith () =
  checki "int arith" 7 (result_int (main "return 1 + 2 * 3;"));
  checki "division" 3 (result_int (main "return 10 / 3;"));
  checki "modulo" 1 (result_int (main "return 10 % 3;"));
  checki "bit ops" 6 (result_int (main "return (3 | 4) & 6;"));
  checki "shifts" 20 (result_int (main "return 5 << 2;"));
  checki "unary minus" (-4) (result_int (main "return -4;"));
  checki "comparison" 1 (result_int (main "return (3 < 4) ? 1 : 0;"));
  checki "float to int return" 2 (result_int (main "double x = 2.5; return (int)x;"))

let test_short_circuit () =
  (* the right operand must not evaluate (it would divide by zero) *)
  checki "&& shortcuts" 0 (result_int (main "int z = 0; return (z != 0 && 1 / z > 0) ? 1 : 0;"));
  checki "|| shortcuts" 1 (result_int (main "int z = 0; return (z == 0 || 1 / z > 0) ? 1 : 0;"))

let test_control_flow () =
  checki "while" 10 (result_int (main "int s = 0; int i = 0; while (i < 4) { s += i; i++; } return s + 4;"));
  checki "do-while" 1 (result_int (main "int i = 0; do { i++; } while (i < 1); return i;"));
  checki "for with break" 3 (result_int (main "int s = 0; for (int i = 0; i < 10; i++) { if (i == 3) { break; } s = i + 1; } return s;"));
  checki "continue" 12 (result_int (main "int s = 0; for (int i = 0; i < 6; i++) { if (i % 2 == 0) { continue; } s += i + 1; } return s;"));
  checki "nested if" 5 (result_int (main "int x = 2; if (x > 1) { if (x > 3) { return 9; } return 5; } return 0;"))

let test_functions_and_recursion () =
  checki "call" 9 (result_int "int sq(int x) { return x * x; } int main() { return sq(3); }");
  checki "recursion" 120
    (result_int "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); } int main() { return fact(5); }")

let test_arrays_and_pointers () =
  checki "new/index" 42 (result_int (main "double *a = new double[4]; a[2] = 42.0; return (int)a[2];"));
  checki "int arrays" 5 (result_int (main "int *v = new int[3]; v[0] = 5; return v[0];"));
  checki "fixed arrays" 3 (result_int (main "double t[8]; t[7] = 3.0; return (int)t[7];"));
  checki "addr-of and deref" 8 (result_int (main "int x = 3; int *p = &x; *p = 8; return x;"))

let test_structs () =
  checki "field access" 4
    (result_int "struct P { int x; int y; }; int main() { P p; p.x = 4; return p.x; }")

let test_closures () =
  checki "lambda captures environment" 30
    (result_int (main "int acc = 0; auto f = [=](int i) { acc += i; }; f(10); f(20); return acc;"))

let test_out_of_bounds () =
  match (run_c (main "double *a = new double[2]; a[5] = 1.0; return 0;")).Ic.result with
  | Error e -> checkb "reports bounds" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "expected out-of-bounds error"

let test_unknown_name () =
  match (run_c (main "return nope;")).Ic.result with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown-name error"

let test_step_budget () =
  match (run_c ~max_steps:100 (main "while (true) { int x = 0; } return 0;")).Ic.result with
  | Error e -> checkb "budget message" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "expected step-budget error"

let test_printf_formats () =
  let o = run_c (main "printf(\"i=%d f=%f s=%s%%\\n\", 42, 1.5, \"x\"); return 0;") in
  Alcotest.(check string) "formatted" "i=42 f=1.500000 s=x%\n" o.Ic.output

(* --- dialect builtins --- *)

let test_cuda_semantics () =
  checki "grid iteration covers all indices" 0
    (result_int
       {|
__global__ void fill(double *a, int n) {
  int i = blockDim.x * blockIdx.x + threadIdx.x;
  if (i < n) { a[i] = (double)i; }
}
int main() {
  int n = 100;
  double *a;
  cudaMalloc((void **)&a, n * sizeof(double));
  fill<<<(n + 31) / 32, 32>>>(a, n);
  for (int i = 0; i < n; i++) {
    if (a[i] != (double)i) { return 1; }
  }
  return 0;
}
|})

let test_sycl_semantics () =
  checki "queue + usm" 0
    (result_int
       {|
int main() {
  int n = 16;
  sycl::queue q;
  double *a = (double *)sycl::malloc_shared(n * sizeof(double), q);
  q.parallel_for(sycl::range<1>(n), [=](sycl::id<1> i) { a[i] = 2.0; });
  q.wait();
  double s = 0.0;
  for (int i = 0; i < n; i++) { s += a[i]; }
  sycl::free(a, q);
  return (s == 32.0) ? 0 : 1;
}
|})

let test_kokkos_semantics () =
  checki "views + reduce" 0
    (result_int
       {|
int main() {
  Kokkos::initialize();
  int n = 8;
  Kokkos::View<double*> v("v", n);
  Kokkos::parallel_for("fill", n, [=](const int i) { v(i) = 3.0; });
  double sum = 0.0;
  Kokkos::parallel_reduce("sum", n, [=](const int i, double &acc) { acc += v(i); }, &sum);
  Kokkos::finalize();
  return (sum == 24.0) ? 0 : 1;
}
|})

let test_tbb_semantics () =
  checki "blocked range" 0
    (result_int
       {|
int main() {
  int n = 10;
  double *a = new double[n];
  tbb::parallel_for(tbb::blocked_range<int>(0, n), [=](tbb::blocked_range<int> r) {
    for (int i = r.begin(); i < r.end(); i++) { a[i] = 1.0; }
  });
  double s = 0.0;
  for (int i = 0; i < n; i++) { s += a[i]; }
  return (s == 10.0) ? 0 : 1;
}
|})

let test_stdpar_semantics () =
  checki "for_each + transform_reduce" 0
    (result_int
       {|
int main() {
  int n = 10;
  double *a = new double[n];
  std::for_each(std::execution::par_unseq, counting_iterator(0), counting_iterator(n),
    [=](int i) { a[i] = (double)i; });
  double s = std::transform_reduce(std::execution::par_unseq, counting_iterator(0),
    counting_iterator(n), 0.0,
    [=](double x, double y) { return x + y; }, [=](int i) { return a[i]; });
  return (s == 45.0) ? 0 : 1;
}
|})

let test_raja_semantics () =
  checki "forall + reducer" 0
    (result_int
       {|
int main() {
  int n = 12;
  double *a = new double[n];
  RAJA::forall<RAJA::omp_parallel_for_exec>(RAJA::RangeSegment(0, n), [=](int i) {
    a[i] = 2.0;
  });
  RAJA::ReduceSum<RAJA::omp_reduce, double> total(0.0);
  RAJA::forall<RAJA::omp_parallel_for_exec>(RAJA::RangeSegment(0, n), [=](int i) {
    total += a[i];
  });
  double sum = total.get();
  return (sum == 24.0) ? 0 : 1;
}
|})

let test_multi_unit_program () =
  let tu1 =
    Sv_lang_c.Parser.parse ~file:"main.cpp"
      "double helper(double x);\nint main() { return (helper(3.0) == 9.0) ? 0 : 1; }"
  in
  let tu2 =
    Sv_lang_c.Parser.parse ~file:"helper.cpp"
      "double helper(double x) { return x * x; }"
  in
  (match (Ic.run [ tu1; tu2 ]).Ic.result with
  | Ok (Ic.VInt 0) -> ()
  | Ok v -> Alcotest.failf "unexpected result %s" (Format.asprintf "%a" Ic.pp_value v)
  | Error e -> Alcotest.fail e);
  (* coverage lands in the right files *)
  let o = Ic.run [ tu1; tu2 ] in
  checkb "helper file covered" true
    (Coverage.lines_hit o.Ic.coverage ~file:"helper.cpp" <> [])

let test_struct_constructor_args () =
  checki "positional construction" 7
    (result_int
       "struct P { int x; int y; }; int main() { P p(3, 4); return p.x + p.y; }")

let test_ternary_and_casts () =
  checki "ternary picks branch" 5 (result_int (main "int x = 2; return x > 1 ? 5 : 9;"));
  checki "int division after cast" 2 (result_int (main "double d = 5.0; return (int)d / 2;"));
  checki "negative int cast" (-3) (result_int (main "double d = -3.9; return (int)d;"))

let test_global_variables () =
  checki "globals readable and writable" 11
    (result_int "int counter = 4; void bump(int k) { counter += k; } int main() { bump(7); return counter; }")

(* --- coverage --- *)

let test_coverage_records_executed () =
  let o = run_c "int main() {\nint x = 1;\nreturn x;\n}" in
  checkb "line 2 covered" true (Coverage.covered o.Ic.coverage ~file:"t.cpp" ~line:2)

let test_coverage_skips_dead_branch () =
  let o = run_c "int main() {\nif (false) {\nint dead = 0;\n}\nreturn 0;\n}" in
  checkb "dead line not covered" false
    (Coverage.covered o.Ic.coverage ~file:"t.cpp" ~line:3)

(* --- Fortran --- *)

let run_f src = If_.run (Sv_lang_f.Parser.parse ~file:"t.f90" src)

let test_fortran_basics () =
  let o =
    run_f
      "program t\n  implicit none\n  integer :: i\n  real(kind=8) :: s\n  real(kind=8), allocatable, dimension(:) :: a\n  allocate(a(10))\n  do i = 1, 10\n    a(i) = real(i, 8)\n  end do\n  s = sum(a)\n  print *, s\nend program t\n"
  in
  checkb "ran" true (o.If_.result = Ok ());
  checkb "sum printed" true (o.If_.output = "55.000000\n")

let test_fortran_subroutine_byref () =
  let o =
    run_f
      "program t\n  implicit none\n  real(kind=8) :: x\n  x = 3.0d0\n  call double_it(x)\n  print *, x\nend program t\n\nsubroutine double_it(v)\n  implicit none\n  real(kind=8) :: v\n  v = 2.0d0 * v\nend subroutine double_it\n"
  in
  checkb "by-reference update" true (o.If_.output = "6.000000\n")

let test_fortran_array_broadcast () =
  let o =
    run_f
      "program t\n  implicit none\n  real(kind=8), allocatable, dimension(:) :: a, b\n  allocate(a(4), b(4))\n  a = 2.0d0\n  b = 3.0d0 * a + 1.0d0\n  print *, sum(b), dot_product(a, b)\nend program t\n"
  in
  checkb "broadcast arithmetic" true (o.If_.output = "28.000000 56.000000\n")

let test_fortran_exit_cycle () =
  let o =
    run_f
      "program t\n  implicit none\n  integer :: i, s\n  s = 0\n  do i = 1, 100\n    if (i == 5) then\n      exit\n    end if\n    if (mod(i, 2) == 0) then\n      cycle\n    end if\n    s = s + i\n  end do\n  print *, s\nend program t\n"
  in
  checkb "exit/cycle" true (o.If_.output = "4\n")

let test_fortran_error () =
  let o = run_f "program t\n  implicit none\n  real(kind=8) :: x\n  x = nosuch(1)\nend program t\n" in
  checkb "unknown function reported" true (Result.is_error o.If_.result)

(* --- the corpus verification runs --- *)

let verify_c name all =
  List.iter
    (fun (cb : Sv_corpus.Emit.codebase) ->
      let resolve n = List.assoc_opt n cb.Sv_corpus.Emit.files in
      let parse_unit file =
        let src = List.assoc file cb.Sv_corpus.Emit.files in
        let pp = Sv_lang_c.Preproc.run ~resolve ~defines:[] ~file src in
        Sv_lang_c.Parser.parse_tokens ~file pp.Sv_lang_c.Preproc.tokens
      in
      let units =
        List.map parse_unit
          (cb.Sv_corpus.Emit.main_file :: cb.Sv_corpus.Emit.extra_units)
      in
      match (Ic.run units).Ic.result with
      | Ok (Ic.VInt 0) -> ()
      | Ok v ->
          Alcotest.failf "%s/%s returned %s" name cb.Sv_corpus.Emit.model
            (Format.asprintf "%a" Ic.pp_value v)
      | Error e -> Alcotest.failf "%s/%s: %s" name cb.Sv_corpus.Emit.model e)
    all

let test_verify_babelstream () = verify_c "babelstream" (Sv_corpus.Babelstream.all ())
let test_verify_tealeaf () = verify_c "tealeaf" (Sv_corpus.Tealeaf.all ())
let test_verify_cloverleaf () = verify_c "cloverleaf" (Sv_corpus.Cloverleaf.all ())
let test_verify_minibude () = verify_c "minibude" (Sv_corpus.Minibude.all ())

let test_verify_babelstream_f () =
  List.iter
    (fun (cb : Sv_corpus.Emit.codebase) ->
      let src = List.assoc cb.Sv_corpus.Emit.main_file cb.Sv_corpus.Emit.files in
      let o = run_f src in
      match o.If_.result with
      | Ok () ->
          checkb
            (Printf.sprintf "%s validation output" cb.Sv_corpus.Emit.model)
            true
            (Sv_util.Xstring.starts_with ~prefix:"Validation PASSED" o.If_.output)
      | Error e -> Alcotest.failf "%s: %s" cb.Sv_corpus.Emit.model e)
    (Sv_corpus.Babelstream_f.all ())

let () =
  Alcotest.run "interp"
    [
      ( "c-semantics",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "short circuit" `Quick test_short_circuit;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "functions" `Quick test_functions_and_recursion;
          Alcotest.test_case "arrays/pointers" `Quick test_arrays_and_pointers;
          Alcotest.test_case "structs" `Quick test_structs;
          Alcotest.test_case "closures" `Quick test_closures;
          Alcotest.test_case "printf" `Quick test_printf_formats;
        ] );
      ( "c-errors",
        [
          Alcotest.test_case "out of bounds" `Quick test_out_of_bounds;
          Alcotest.test_case "unknown name" `Quick test_unknown_name;
          Alcotest.test_case "step budget" `Quick test_step_budget;
        ] );
      ( "dialects",
        [
          Alcotest.test_case "cuda" `Quick test_cuda_semantics;
          Alcotest.test_case "sycl" `Quick test_sycl_semantics;
          Alcotest.test_case "kokkos" `Quick test_kokkos_semantics;
          Alcotest.test_case "tbb" `Quick test_tbb_semantics;
          Alcotest.test_case "stdpar" `Quick test_stdpar_semantics;
          Alcotest.test_case "raja" `Quick test_raja_semantics;
        ] );
      ( "programs",
        [
          Alcotest.test_case "multi-unit link" `Quick test_multi_unit_program;
          Alcotest.test_case "struct constructor" `Quick test_struct_constructor_args;
          Alcotest.test_case "ternary/casts" `Quick test_ternary_and_casts;
          Alcotest.test_case "globals" `Quick test_global_variables;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "records executed lines" `Quick test_coverage_records_executed;
          Alcotest.test_case "skips dead branches" `Quick test_coverage_skips_dead_branch;
        ] );
      ( "fortran",
        [
          Alcotest.test_case "basics" `Quick test_fortran_basics;
          Alcotest.test_case "by-reference args" `Quick test_fortran_subroutine_byref;
          Alcotest.test_case "array broadcast" `Quick test_fortran_array_broadcast;
          Alcotest.test_case "exit/cycle" `Quick test_fortran_exit_cycle;
          Alcotest.test_case "errors" `Quick test_fortran_error;
        ] );
      ( "corpus-verification",
        [
          Alcotest.test_case "babelstream c++" `Slow test_verify_babelstream;
          Alcotest.test_case "babelstream fortran" `Quick test_verify_babelstream_f;
          Alcotest.test_case "tealeaf" `Slow test_verify_tealeaf;
          Alcotest.test_case "cloverleaf" `Slow test_verify_cloverleaf;
          Alcotest.test_case "minibude" `Slow test_verify_minibude;
        ] );
    ]
